//! Online scheduler adaptation under live traffic: a background trainer
//! that taps served outcomes, learns on them, and hot-swaps updated agent
//! weights into the predict path — closing the loop the paper's offline
//! pipeline leaves open (train once, serve frozen).
//!
//! ## Architecture
//!
//! ```text
//! workers ──(outcome tap: bounded mpsc, try_send)──▶ trainer thread
//!    ▲                                                   │ absorb → learn
//!    │                                                   │ every `swap_every` steps
//!    └────────(SnapshotCell: generation-counted Arc)◀────┘ publish(gen+1)
//! ```
//!
//! * **Taps** — each worker holds an [`AdaptTap`]: a clone of the bounded
//!   experience channel's sender plus the shared [`SnapshotCell`]. After a
//!   batch executes, the worker offers each outcome (item + executed model
//!   sequence) with a non-blocking `try_send`; a full channel *drops* the
//!   sample and counts it — the serving hot path never waits on learning.
//! * **Trainer** — one background thread owns an
//!   [`OnlineTrainer`](ams_rl::OnlineTrainer): it replays each outcome into
//!   transitions, steps the learner, and every
//!   [`AdaptConfig::swap_every`] learn steps exports the weights as a new
//!   generation. All randomness flows from [`OnlineConfig::seed`], so a
//!   paced replay of the same stream reproduces the same weight
//!   trajectory. Channel disconnect (every worker joined and the server's
//!   own sender dropped) is the trainer's stop signal.
//! * **Swap** — [`SnapshotCell::publish`] installs the new
//!   `Arc<AgentSnapshot>` under a mutex and *then* stores the generation
//!   counter with `Release`. Workers poll with one `Acquire` load per
//!   batch ([`SnapshotCell::generation`]) and take the slot lock only on
//!   a generation change — the steady-state read path is a single atomic
//!   load, no lock. A pinned
//!   [`SnapshotPredictor`](ams_core::SnapshotPredictor) keeps every
//!   predict inside one batch on one coherent weight set; a swap can never
//!   tear a forward pass.
//!
//! With [`ServeConfig::adapt`](crate::ServeConfig::adapt) unset, none of
//! this exists: workers call the scheduler exactly as before — the frozen
//! path is byte-identical to a server built without this module.

use crate::obs::{Event, EventKind, ServerObs, NO_SHARD, NO_TICKET};
use ams_core::SnapshotPredictor;
use ams_data::ItemTruth;
use ams_models::ModelId;
use ams_rl::{AgentSnapshot, OnlineConfig, OnlineTrainer, TrainedAgent};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Observability correlation id for swap events: not a request.
const NO_REQ: u64 = u64::MAX;

/// Online-adaptation configuration for
/// [`ServeConfig::adapt`](crate::ServeConfig::adapt).
#[derive(Debug, Clone)]
pub struct AdaptConfig {
    /// The boot agent: generation 0, what the server serves until the
    /// trainer publishes its first swap (and forever when traffic is too
    /// thin to warm the replay buffer up).
    pub agent: TrainedAgent,
    /// Bounded experience-channel capacity (outcomes queued between the
    /// workers and the trainer). A full channel drops new samples —
    /// counted in [`AdaptReport::experiences_dropped`] — rather than
    /// stalling a worker. Min 1.
    pub channel_capacity: usize,
    /// Learner hyperparameters (batch, lr, gamma, replay capacity,
    /// warmup, target sync) plus the **seed** every bit of trainer
    /// randomness derives from.
    pub online: OnlineConfig,
    /// Learn steps attempted per absorbed outcome (more = faster
    /// tracking, more CPU on the trainer thread). Min 1.
    pub steps_per_outcome: u32,
    /// Publish a new weight generation every this many learn steps.
    /// Min 1.
    pub swap_every: u64,
}

impl AdaptConfig {
    /// Adaptation from `agent` with default learning shape: a 1024-deep
    /// experience channel, one learn step per outcome, a swap every 32
    /// steps.
    pub fn new(agent: TrainedAgent) -> Self {
        Self {
            agent,
            channel_capacity: 1024,
            online: OnlineConfig::default(),
            steps_per_outcome: 1,
            swap_every: 32,
        }
    }

    /// Builder: seed the trainer's RNG (see [`OnlineConfig::seed`]).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.online.seed = seed;
        self
    }
}

/// The merged online-adaptation record (present on
/// [`ServeReport`](crate::ServeReport) when the server ran with
/// [`ServeConfig::adapt`](crate::ServeConfig::adapt)).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptReport {
    /// Final published weight generation (0 = the boot weights were never
    /// replaced).
    pub generation: u64,
    /// Weight swaps published into the predict path. Reconciles with the
    /// event stream: `obs.total(WeightsSwapped) == swaps`.
    pub swaps: u64,
    /// Gradient steps taken.
    pub learn_steps: u64,
    /// Replay transitions built from served outcomes.
    pub transitions: u64,
    /// Outcomes received over the experience channel.
    pub experiences: u64,
    /// Outcomes dropped at the taps because the channel was full.
    pub experiences_dropped: u64,
    /// Downsampled TD-loss trajectory (evenly decimated, oldest first) —
    /// the learning curve the drift benchmark plots.
    pub losses: Vec<f32>,
}

/// One served outcome crossing the experience channel: the item and the
/// model sequence the scheduler actually ran on it.
pub(crate) struct ExperienceSample {
    pub(crate) item: Arc<ItemTruth>,
    pub(crate) executed: Vec<ModelId>,
}

// ams-lint: begin(no-panic) weight swap + snapshot read path — a panic
// here poisons the slot every worker and the trainer share

/// Double-buffered, generation-counted snapshot slot.
///
/// `publish` replaces the slot under the mutex and then stores the new
/// generation with `Release`; readers poll `generation` with one `Acquire`
/// load and take the lock only when the number moved. The mutex is never
/// held across a forward pass — readers clone the `Arc` out and predict
/// against their own pin — so the swap path and the predict path contend
/// for nanoseconds, not milliseconds. A poisoned lock (a panicking writer
/// mid-swap is impossible — `publish` only moves an `Arc` — but a reader
/// could panic elsewhere while holding it) is recovered, not propagated:
/// the slot always holds a coherent `Arc`.
pub(crate) struct SnapshotCell {
    /// Published generation; always written *after* the slot it
    /// describes. Release/Acquire ordering below.
    generation: AtomicU64,
    slot: Mutex<Arc<AgentSnapshot>>,
}

impl SnapshotCell {
    /// A cell holding `snapshot` as the current generation.
    pub(crate) fn new(snapshot: Arc<AgentSnapshot>) -> Self {
        Self {
            generation: AtomicU64::new(snapshot.generation),
            slot: Mutex::new(snapshot),
        }
    }

    /// The published generation: one atomic load — the whole steady-state
    /// read path.
    pub(crate) fn generation(&self) -> u64 {
        // Acquire pairs with the Release store in `publish`: a reader that
        // observes generation G also observes the slot that carries G.
        self.generation.load(Ordering::Acquire)
    }

    /// Clone the current snapshot out of the slot.
    pub(crate) fn read(&self) -> Arc<AgentSnapshot> {
        let slot = self
            .slot
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        Arc::clone(&slot)
    }

    /// Install `snapshot` as the new current generation.
    pub(crate) fn publish(&self, snapshot: Arc<AgentSnapshot>) {
        let generation = snapshot.generation;
        {
            let mut slot = self
                .slot
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            *slot = snapshot;
        }
        // Release pairs with the Acquire load in `generation`: the slot
        // swap above happens-before any reader that sees this number.
        self.generation.store(generation, Ordering::Release);
    }
}

/// State shared between the workers, the trainer, and the server handle.
pub(crate) struct AdaptShared {
    pub(crate) cell: SnapshotCell,
    /// Samples dropped at the taps (full channel), summed across workers.
    dropped: AtomicU64,
    /// Early-stop for the abort path; the graceful stop signal is channel
    /// disconnect.
    stop: AtomicBool,
}

impl AdaptShared {
    /// Current published weight generation (the `ams_adapt_generation`
    /// gauge).
    pub(crate) fn generation(&self) -> u64 {
        self.cell.generation()
    }
}

/// A worker's handle into the adaptation loop: the experience sender plus
/// the snapshot cell, cloned per worker at spawn.
pub(crate) struct AdaptTap {
    tx: SyncSender<ExperienceSample>,
    shared: Arc<AdaptShared>,
}

impl AdaptTap {
    /// Offer one served outcome to the trainer without blocking. A full
    /// channel (or a trainer that already exited) drops the sample and
    /// counts the drop — the serving path never waits on learning.
    pub(crate) fn offer(&self, item: &Arc<ItemTruth>, executed: &[ModelId]) {
        let sample = ExperienceSample {
            item: Arc::clone(item),
            executed: executed.to_vec(),
        };
        match self.tx.try_send(sample) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.shared.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// A worker's serving-side adaptation state: its tap plus the predictor
/// pinned to the generation it last observed.
pub(crate) struct WorkerAdapt {
    tap: AdaptTap,
    pub(crate) predictor: SnapshotPredictor,
    generation: u64,
}

impl WorkerAdapt {
    /// Pin the worker to the cell's current snapshot.
    pub(crate) fn new(tap: AdaptTap) -> Self {
        let snapshot = tap.shared.cell.read();
        let generation = snapshot.generation;
        Self {
            tap,
            predictor: SnapshotPredictor::new(snapshot),
            generation,
        }
    }

    /// Repin to the latest published generation if it moved — one atomic
    /// load in the common (unchanged) case. Called once per batch, so
    /// every predict inside a batch sees one coherent weight set.
    pub(crate) fn refresh(&mut self) {
        let current = self.tap.shared.cell.generation();
        if current != self.generation {
            let snapshot = self.tap.shared.cell.read();
            self.generation = snapshot.generation;
            self.predictor.set_snapshot(snapshot);
        }
    }

    /// Offer one served outcome to the trainer (never blocks).
    pub(crate) fn offer(&self, item: &Arc<ItemTruth>, executed: &[ModelId]) {
        self.tap.offer(item, executed);
    }
}

// ams-lint: end(no-panic)

/// The live adaptation runtime: the shared cell, the server-held sender,
/// and the joinable trainer thread.
pub(crate) struct AdaptRuntime {
    pub(crate) shared: Arc<AdaptShared>,
    tx: SyncSender<ExperienceSample>,
    handle: JoinHandle<AdaptReport>,
}

impl AdaptRuntime {
    /// Boot the snapshot cell at generation 0 and spawn the trainer
    /// thread.
    pub(crate) fn start(cfg: &AdaptConfig, obs: Option<Arc<ServerObs>>) -> Self {
        let shared = Arc::new(AdaptShared {
            cell: SnapshotCell::new(Arc::new(AgentSnapshot::initial(cfg.agent.clone()))),
            dropped: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        });
        let (tx, rx) = sync_channel(cfg.channel_capacity.max(1));
        let handle = {
            let shared = Arc::clone(&shared);
            let cfg = cfg.clone();
            std::thread::spawn(move || trainer_loop(&cfg, &shared, rx, obs.as_deref()))
        };
        Self { shared, tx, handle }
    }

    /// A per-worker tap (sender clone + shared cell).
    pub(crate) fn tap(&self) -> AdaptTap {
        AdaptTap {
            tx: self.tx.clone(),
            shared: Arc::clone(&self.shared),
        }
    }

    /// Graceful finish: drop the server's sender (the workers' tap clones
    /// are already gone once they joined), let the trainer drain the
    /// channel to disconnect, and fold its final record. Call only after
    /// the workers are joined, or the channel never disconnects.
    pub(crate) fn finish(self) -> AdaptReport {
        drop(self.tx);
        self.handle.join().expect("adapt trainer panicked")
    }

    /// Abort finish: ask the trainer to stop at the next check instead of
    /// draining the backlog, then join. The report is discarded by the
    /// caller (abort produces no `ServeReport`).
    pub(crate) fn abort(self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        drop(self.tx);
        let _ = self.handle.join();
    }
}

/// Push a loss sample with bounded memory: once the trajectory hits the
/// cap, decimate it (keep every other sample) and double the stride, so
/// the record stays evenly spaced over the whole run.
fn push_loss(losses: &mut Vec<f32>, stride: &mut u64, seen: &mut u64, loss: f32) {
    if seen.is_multiple_of(*stride) {
        losses.push(loss);
        if losses.len() >= 256 {
            let mut keep = 0;
            losses.retain(|_| {
                keep += 1;
                keep % 2 == 1
            });
            *stride *= 2;
        }
    }
    *seen += 1;
}

/// The trainer thread: receive outcomes, replay them into transitions,
/// step the learner, and publish a new weight generation every
/// `swap_every` steps. Exits on channel disconnect (graceful drain) or
/// the abort flag.
fn trainer_loop(
    cfg: &AdaptConfig,
    shared: &AdaptShared,
    rx: Receiver<ExperienceSample>,
    obs: Option<&ServerObs>,
) -> AdaptReport {
    let mut trainer = OnlineTrainer::new(&cfg.agent, &cfg.online);
    let steps_per_outcome = cfg.steps_per_outcome.max(1);
    let swap_every = cfg.swap_every.max(1);
    let mut experiences = 0u64;
    let mut swaps = 0u64;
    let mut generation = 0u64;
    let mut last_swap_step = 0u64;
    let mut losses = Vec::new();
    let (mut loss_stride, mut loss_seen) = (1u64, 0u64);
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        let sample = match rx.recv_timeout(Duration::from_millis(5)) {
            Ok(sample) => sample,
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => continue,
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
        };
        experiences += 1;
        trainer.absorb(&sample.item, &sample.executed);
        for _ in 0..steps_per_outcome {
            if !trainer.ready() {
                break;
            }
            if let Some(loss) = trainer.learn_step() {
                push_loss(&mut losses, &mut loss_stride, &mut loss_seen, loss);
            }
            if trainer.steps() - last_swap_step >= swap_every {
                last_swap_step = trainer.steps();
                generation += 1;
                swaps += 1;
                shared.cell.publish(Arc::new(trainer.export(generation)));
                if let Some(o) = obs {
                    o.emit(Event {
                        at_us: o.now_us(),
                        req: NO_REQ,
                        ticket: NO_TICKET,
                        shard: NO_SHARD,
                        class: 0,
                        kind: EventKind::WeightsSwapped,
                        detail: generation,
                        flag: false,
                    });
                }
            }
        }
    }
    AdaptReport {
        generation,
        swaps,
        learn_steps: trainer.steps(),
        transitions: trainer.transitions(),
        experiences,
        experiences_dropped: shared.dropped.load(Ordering::Relaxed),
        losses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_core::ValuePredictor;
    use ams_data::{Dataset, DatasetProfile, TruthTable};
    use ams_models::{LabelSet, ModelZoo};
    use ams_rl::{train, Algo, TrainConfig};
    use proptest::prelude::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
    use std::sync::OnceLock;

    fn boot_agent() -> (TrainedAgent, TruthTable) {
        let zoo = ModelZoo::standard();
        let ds = Dataset::generate(DatasetProfile::Coco2017, 12, 7);
        let truth = TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5);
        let cfg = TrainConfig {
            episodes: 6,
            ..TrainConfig::fast_test(Algo::Dqn)
        };
        let (agent, _) = train(truth.items(), 30, &cfg);
        (agent, truth)
    }

    /// One shared boot fixture for the swap-storm proptest: training is
    /// the expensive part, and the cases only need *some* coherent
    /// weights to publish.
    fn storm_fixture() -> &'static (TrainedAgent, TruthTable) {
        static FIXTURE: OnceLock<(TrainedAgent, TruthTable)> = OnceLock::new();
        FIXTURE.get_or_init(boot_agent)
    }

    #[test]
    fn snapshot_cell_publish_is_visible_and_ordered() {
        let (agent, _) = boot_agent();
        let cell = SnapshotCell::new(Arc::new(AgentSnapshot::initial(agent.clone())));
        assert_eq!(cell.generation(), 0);
        assert_eq!(cell.read().generation, 0);
        cell.publish(Arc::new(AgentSnapshot {
            agent,
            generation: 5,
        }));
        assert_eq!(cell.generation(), 5);
        assert_eq!(cell.read().generation, 5);
    }

    #[test]
    fn trainer_loop_learns_swaps_and_reports() {
        let (agent, truth) = boot_agent();
        let cfg = AdaptConfig {
            channel_capacity: 64,
            online: OnlineConfig {
                warmup: 8,
                batch: 8,
                ..OnlineConfig::default()
            },
            steps_per_outcome: 2,
            swap_every: 4,
            agent,
        };
        let runtime = AdaptRuntime::start(&cfg, None);
        let tap = runtime.tap();
        let executed: Vec<ModelId> = (0..6).map(ModelId).collect();
        for _ in 0..4 {
            for item in truth.items() {
                tap.offer(&Arc::new(item.clone()), &executed);
            }
        }
        drop(tap);
        let report = runtime.finish();
        assert!(report.experiences > 0);
        assert!(report.learn_steps > 0, "trainer must warm up and step");
        assert!(report.swaps > 0, "steps_per_outcome×outcomes ≫ swap_every");
        assert_eq!(report.generation, report.swaps);
        assert!(report.transitions >= report.experiences);
        assert!(!report.losses.is_empty());
    }

    #[test]
    fn trainer_is_deterministic_under_seed() {
        let (agent, truth) = boot_agent();
        let run = |seed: u64| {
            let cfg = AdaptConfig {
                online: OnlineConfig {
                    warmup: 8,
                    batch: 8,
                    seed,
                    ..OnlineConfig::default()
                },
                swap_every: 4,
                ..AdaptConfig::new(agent.clone())
            };
            let runtime = AdaptRuntime::start(&cfg, None);
            let tap = runtime.tap();
            let executed: Vec<ModelId> = (0..8).map(ModelId).collect();
            for _ in 0..3 {
                for item in truth.items() {
                    tap.offer(&Arc::new(item.clone()), &executed);
                }
            }
            drop(tap);
            let report = runtime.finish();
            (report.swaps, report.learn_steps, report.losses)
        };
        // Same seed → identical learning trajectory; the channel is
        // drained by one thread in submission order, so wall-clock
        // scheduling cannot perturb it.
        assert_eq!(run(11), run(11));
        // A different seed must actually change the trajectory.
        assert_ne!(run(11).2, run(12).2);
    }

    #[test]
    fn full_channel_drops_and_counts_instead_of_blocking() {
        let (agent, truth) = boot_agent();
        let shared = Arc::new(AdaptShared {
            cell: SnapshotCell::new(Arc::new(AgentSnapshot::initial(agent))),
            dropped: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        });
        // No trainer draining: a 2-deep channel fills after two offers.
        let (tx, _rx) = sync_channel(2);
        let tap = AdaptTap {
            tx,
            shared: Arc::clone(&shared),
        };
        let item = Arc::new(truth.item(0).clone());
        for _ in 0..5 {
            tap.offer(&item, &[ModelId(0)]);
        }
        assert_eq!(shared.dropped.load(Ordering::Relaxed), 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 6 })]

        /// Concurrent swaps under a predict storm never yield a torn
        /// snapshot. The coherence contract of [`SnapshotCell`]: a reader
        /// that loads generation G and then reads the slot gets a
        /// snapshot stamped **at least** G (`publish` writes the slot
        /// before the counter), never one that was never published, and
        /// successive reads never go backwards. Every pinned snapshot
        /// supports a full forward pass mid-storm.
        #[test]
        fn concurrent_swaps_never_tear_snapshots(
            readers in 1usize..4,
            publishes in 1u64..40,
        ) {
            let (agent, truth) = storm_fixture();
            let cell = Arc::new(SnapshotCell::new(Arc::new(AgentSnapshot::initial(
                agent.clone(),
            ))));
            let item = Arc::new(truth.item(0).clone());
            let reader_handles: Vec<_> = (0..readers)
                .map(|_| {
                    let cell = Arc::clone(&cell);
                    let item = Arc::clone(&item);
                    std::thread::spawn(move || -> Result<(), String> {
                        let mut predictor = SnapshotPredictor::new(cell.read());
                        let state = LabelSet::new(item.universe());
                        let mut out = vec![0.0f32; predictor.num_models()];
                        let mut last_counter = 0u64;
                        let mut last_pinned = 0u64;
                        loop {
                            let before = cell.generation();
                            if before < last_counter {
                                return Err(format!(
                                    "counter went backwards: {before} after {last_counter}"
                                ));
                            }
                            last_counter = before;
                            let snapshot = cell.read();
                            if snapshot.generation < before {
                                return Err(format!(
                                    "torn read: slot at {} behind counter {before}",
                                    snapshot.generation
                                ));
                            }
                            if snapshot.generation > publishes {
                                return Err(format!(
                                    "phantom generation {} (only {publishes} published)",
                                    snapshot.generation
                                ));
                            }
                            if snapshot.generation < last_pinned {
                                return Err(format!(
                                    "slot went backwards: {} after {last_pinned}",
                                    snapshot.generation
                                ));
                            }
                            last_pinned = snapshot.generation;
                            // The predict storm: every pinned snapshot must
                            // carry an intact network.
                            predictor.set_snapshot(snapshot);
                            predictor.predict_into(&state, &item, &mut out);
                            if out.iter().any(|v| !v.is_finite()) {
                                return Err("non-finite Q values from pinned snapshot".into());
                            }
                            if before >= publishes {
                                return Ok(());
                            }
                        }
                    })
                })
                .collect();
            let publisher = {
                let cell = Arc::clone(&cell);
                let agent = agent.clone();
                std::thread::spawn(move || {
                    for generation in 1..=publishes {
                        cell.publish(Arc::new(AgentSnapshot {
                            agent: agent.clone(),
                            generation,
                        }));
                    }
                })
            };
            publisher.join().expect("publisher thread");
            for handle in reader_handles {
                let verdict = handle.join().expect("reader thread");
                prop_assert!(verdict.is_ok(), "{}", verdict.unwrap_err());
            }
            prop_assert_eq!(cell.generation(), publishes);
            prop_assert_eq!(cell.read().generation, publishes);
        }
    }

    #[test]
    fn loss_trajectory_stays_bounded_and_spaced() {
        let mut losses = Vec::new();
        let (mut stride, mut seen) = (1u64, 0u64);
        for i in 0..10_000 {
            push_loss(&mut losses, &mut stride, &mut seen, i as f32);
        }
        assert!(losses.len() < 256);
        assert!(losses.len() >= 64, "decimation must not starve the record");
        let as_idx: Vec<u64> = losses.iter().map(|&l| l as u64).collect();
        let gaps: Vec<u64> = as_idx.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(
            gaps.iter().all(|&g| g == gaps[0]),
            "retained samples stay evenly spaced: {gaps:?}"
        );
    }
}
