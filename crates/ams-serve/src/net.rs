//! TCP front-end for the serving engine: the ticket protocol over a
//! socket.
//!
//! The PR-5 client API (`Client` / `Ticket` / `Completion`) was shaped
//! like a wire protocol on purpose; this module gives it a real
//! transport so the scheduler can serve clients in other processes (and,
//! eventually, other machines) without changing what it computes:
//!
//! * **Framing** — compact length-prefixed frames: a 4-byte little-endian
//!   payload length (capped at [`MAX_FRAME`]) followed by a binary
//!   encoding of the vendored serde [`Value`] tree (tag byte + LEB128
//!   varints; floats travel as raw IEEE-754 bits, so labels received
//!   over TCP are **byte-identical** to the in-process client's). The
//!   decoder is total: truncation, oversized claims, unknown tags, bad
//!   UTF-8, and pathological nesting all return [`WireError`] — never a
//!   panic.
//! * **Multiplexing** — one persistent connection carries many tickets.
//!   The client picks a request id per submission and the server echoes
//!   it in the terminal [`ServerFrame::Completion`] (the embedded
//!   [`Completion`]'s ticket field is rewritten to the request id), so
//!   responses arrive in completion order, not submission order.
//! * **Flow control** — the connection's `Hello { window }` sizes a
//!   server-side per-connection [`Client`](crate::Client) completion
//!   window. When the window is full the connection's reader thread
//!   blocks in `submit_with` and **stops reading the socket**; TCP
//!   backpressure propagates the stall to the remote client, exactly
//!   mirroring how the in-process `CompletionQueue` bounds a local
//!   submitter. [`NetClient`] enforces the same bound locally, so a
//!   well-behaved client never even fills the kernel buffers.
//! * **Lifecycle** — `Goodbye` closes gracefully (outstanding tickets
//!   still resolve and their completions are delivered); an abrupt
//!   disconnect (EOF, reset, malformed frame) cancels every outstanding
//!   ticket of that connection — cancellation already races correctly
//!   against claim/shed via the CAS completion slots, so a worker
//!   mid-label simply completes into a closed socket and the event is
//!   dropped *after* it balanced the ledgers. Either way the
//!   conservation equations and `events_reconcile()` hold, and other
//!   connections keep serving.
//!
//! Synchronously refused submissions (queue full under the reject
//! policy, server shut down) have no in-process completion event — the
//! caller sees `SubmitOutcome::Rejected`. Over the wire every request id
//! must get an answer, so the connection sends
//! [`ServerFrame::Rejected`] instead.

use crate::completion::Completion;
use crate::server::{AmsServer, Client, ServeReport, SubmitOptions};
use ams_data::ItemTruth;
use serde::{Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Hard cap on one frame's payload, bytes. A length prefix above this is
/// a protocol error — the connection closes before allocating anything.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Cap on the per-connection completion window a `Hello` may request.
pub const MAX_WINDOW: u64 = 65_536;

/// Maximum nesting depth the value decoder accepts — a crafted payload
/// of nested arrays must error out, not overflow the stack.
const MAX_DEPTH: u32 = 64;

/// How often blocked socket reads and completion waits re-check their
/// stop conditions.
const POLL: Duration = Duration::from_millis(50);

// ---------------------------------------------------------------------------
// Wire errors
// ---------------------------------------------------------------------------

/// Why a wire operation failed. Every failure path through the codec and
/// the connection handlers lands here — malformed input never panics.
#[derive(Debug)]
pub enum WireError {
    /// Socket-level I/O failure.
    Io(std::io::Error),
    /// The peer closed the connection (EOF, possibly mid-frame).
    Closed,
    /// A frame length prefix of zero or above [`MAX_FRAME`].
    FrameTooLarge(u32),
    /// The frame payload did not decode (truncated value, unknown tag,
    /// bad UTF-8, over-deep nesting, trailing bytes, or a well-formed
    /// value of the wrong shape).
    Malformed(String),
    /// A well-formed frame that violates the protocol (first frame not
    /// `Hello`, duplicate request id, frame after `Goodbye`).
    Protocol(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "io error: {e}"),
            WireError::Closed => write!(f, "connection closed"),
            WireError::FrameTooLarge(n) => write!(f, "frame length {n} outside 1..={MAX_FRAME}"),
            WireError::Malformed(m) => write!(f, "malformed frame: {m}"),
            WireError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == ErrorKind::UnexpectedEof {
            WireError::Closed
        } else {
            WireError::Io(e)
        }
    }
}

// ---------------------------------------------------------------------------
// Binary value codec
// ---------------------------------------------------------------------------

const TAG_NULL: u8 = 0x00;
const TAG_FALSE: u8 = 0x01;
const TAG_TRUE: u8 = 0x02;
const TAG_U64: u8 = 0x03;
const TAG_I64: u8 = 0x04;
const TAG_F64: u8 = 0x05;
const TAG_STR: u8 = 0x06;
const TAG_ARRAY: u8 = 0x07;
const TAG_OBJECT: u8 = 0x08;

fn put_varint(out: &mut Vec<u8>, mut n: u64) {
    loop {
        let byte = (n & 0x7f) as u8;
        n >>= 7;
        if n == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Encode one value tree into the compact binary form. Total: every
/// value encodes, and `decode_value` of the result returns an equal tree
/// (floats bit-exactly — they travel as raw IEEE-754 bits, unlike the
/// JSON text path).
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::U64(n) => {
            out.push(TAG_U64);
            put_varint(out, *n);
        }
        Value::I64(n) => {
            // ZigZag so small negatives stay small.
            out.push(TAG_I64);
            put_varint(out, ((n << 1) ^ (n >> 63)) as u64);
        }
        Value::F64(f) => {
            out.push(TAG_F64);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            put_varint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Array(items) => {
            out.push(TAG_ARRAY);
            put_varint(out, items.len() as u64);
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Object(fields) => {
            out.push(TAG_OBJECT);
            put_varint(out, fields.len() as u64);
            for (k, val) in fields {
                put_varint(out, k.len() as u64);
                out.extend_from_slice(k.as_bytes());
                encode_value(val, out);
            }
        }
    }
}

// ams-lint: begin(no-panic) wire decode path — parses hostile bytes; a
// malformed frame must produce WireError::Malformed, never a panic

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn byte(&mut self) -> Result<u8, WireError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| WireError::Malformed("truncated value".into()))?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let s = self
            .buf
            .get(self.pos..self.pos.saturating_add(n))
            .ok_or_else(|| WireError::Malformed("truncated value".into()))?;
        self.pos += n;
        Ok(s)
    }

    fn varint(&mut self) -> Result<u64, WireError> {
        let mut n: u64 = 0;
        for shift in (0..64).step_by(7) {
            let b = self.byte()?;
            let low = u64::from(b & 0x7f);
            if shift == 63 && low > 1 {
                return Err(WireError::Malformed("varint overflows u64".into()));
            }
            n |= low << shift;
            if b & 0x80 == 0 {
                return Ok(n);
            }
        }
        Err(WireError::Malformed("varint longer than 10 bytes".into()))
    }

    /// A claimed element count, sanity-bounded by the bytes actually
    /// present (every element costs at least `min_bytes`), so a hostile
    /// length claim cannot drive a huge allocation.
    fn count(&mut self, min_bytes: usize) -> Result<usize, WireError> {
        let n = self.varint()?;
        let ceiling = (self.remaining() / min_bytes.max(1)) as u64;
        if n > ceiling {
            return Err(WireError::Malformed(format!(
                "count {n} exceeds remaining payload"
            )));
        }
        Ok(n as usize)
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.count(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Malformed("invalid utf-8 in string".into()))
    }

    fn value(&mut self, depth: u32) -> Result<Value, WireError> {
        if depth > MAX_DEPTH {
            return Err(WireError::Malformed("value nested too deeply".into()));
        }
        match self.byte()? {
            TAG_NULL => Ok(Value::Null),
            TAG_FALSE => Ok(Value::Bool(false)),
            TAG_TRUE => Ok(Value::Bool(true)),
            TAG_U64 => Ok(Value::U64(self.varint()?)),
            TAG_I64 => {
                let z = self.varint()?;
                Ok(Value::I64(((z >> 1) as i64) ^ -((z & 1) as i64)))
            }
            TAG_F64 => {
                let bytes: [u8; 8] = self
                    .take(8)?
                    .try_into()
                    .map_err(|_| WireError::Malformed("truncated f64".into()))?;
                Ok(Value::F64(f64::from_bits(u64::from_le_bytes(bytes))))
            }
            TAG_STR => Ok(Value::Str(self.string()?)),
            TAG_ARRAY => {
                let n = self.count(1)?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(self.value(depth + 1)?);
                }
                Ok(Value::Array(items))
            }
            TAG_OBJECT => {
                let n = self.count(2)?;
                let mut fields = Vec::with_capacity(n);
                for _ in 0..n {
                    let key = self.string()?;
                    let val = self.value(depth + 1)?;
                    fields.push((key, val));
                }
                Ok(Value::Object(fields))
            }
            tag => Err(WireError::Malformed(format!(
                "unknown value tag {tag:#04x}"
            ))),
        }
    }
}

/// Decode one value tree from the compact binary form. Strict: trailing
/// bytes after the root value are an error, and no input panics.
pub fn decode_value(buf: &[u8]) -> Result<Value, WireError> {
    let mut cur = Cursor { buf, pos: 0 };
    let v = cur.value(0)?;
    if cur.remaining() != 0 {
        return Err(WireError::Malformed(format!(
            "{} trailing bytes after value",
            cur.remaining()
        )));
    }
    Ok(v)
}

// ams-lint: end(no-panic)

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

/// One submission travelling client → server: the scene content plus the
/// ticket's own economics. `id` is chosen by the client and echoed in
/// the terminal [`ServerFrame`]; it must be unique among the
/// connection's in-flight requests.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireRequest {
    /// Client-chosen request id, echoed in the completion.
    pub id: u64,
    /// The scene to label (full content — the server fingerprints it for
    /// the cache and affinity routing exactly like a local submission).
    pub item: ItemTruth,
    /// SLO class (aggregation bucket; clamped server-side).
    pub class: usize,
    /// Optional per-ticket deadline override, µs.
    pub deadline_us: Option<u64>,
    /// Optional per-ticket value override.
    pub value: Option<f64>,
}

/// Frames travelling client → server.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ClientFrame {
    /// Mandatory first frame: size the connection's completion window
    /// (clamped to `1..=`[`MAX_WINDOW`]). The window is the flow
    /// control — the server stops reading the socket while it is full.
    Hello {
        /// Requested window: maximum in-flight (unanswered) requests.
        window: u64,
    },
    /// Submit one item for labeling.
    Request(WireRequest),
    /// Cancel an in-flight request by its client-chosen id. Exactly like
    /// [`Ticket::cancel`](crate::Ticket::cancel): wins only while the
    /// request is unclaimed, and the terminal completion reports what
    /// actually happened.
    Cancel {
        /// The client-chosen id of the request to cancel.
        id: u64,
    },
    /// Graceful close: the server stops reading, lets every outstanding
    /// ticket resolve, delivers the remaining completions, and closes.
    Goodbye,
}

/// Frames travelling server → client.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ServerFrame {
    /// The terminal event of one request. The embedded completion's
    /// ticket field carries the **client-chosen request id**, not the
    /// server-internal ticket id.
    Completion(Completion),
    /// The submission was refused synchronously (shard queue full under
    /// the reject policy, or the server is shutting down): no ticket was
    /// issued and no completion will follow. The in-process analogue is
    /// `SubmitOutcome::Rejected`.
    Rejected {
        /// The client-chosen id of the refused request.
        id: u64,
    },
}

/// What [`NetClient::recv`] yields: a terminal completion (with the
/// ticket field already carrying the client-chosen request id) or a
/// synchronous rejection.
#[derive(Debug, Clone)]
pub enum NetEvent {
    /// The request's terminal event; `completion.ticket()` is the
    /// client-chosen request id.
    Completion(Completion),
    /// The request was refused synchronously; no labels exist.
    Rejected {
        /// The client-chosen id of the refused request.
        id: u64,
    },
}

impl NetEvent {
    /// The client-chosen request id this event answers.
    pub fn id(&self) -> u64 {
        match self {
            NetEvent::Completion(c) => c.ticket(),
            NetEvent::Rejected { id } => *id,
        }
    }

    /// The completion, when the request got one.
    pub fn completion(&self) -> Option<&Completion> {
        match self {
            NetEvent::Completion(c) => Some(c),
            NetEvent::Rejected { .. } => None,
        }
    }
}

/// Rewrite the ticket id inside a completion to the client-chosen
/// request id before it crosses the wire.
fn with_wire_id(mut ev: Completion, id: u64) -> Completion {
    match &mut ev {
        Completion::Labeled(r) => r.ticket = id,
        Completion::Shed { ticket, .. } | Completion::Cancelled { ticket, .. } => *ticket = id,
    }
    ev
}

// ---------------------------------------------------------------------------
// Frame I/O
// ---------------------------------------------------------------------------

/// Serialize and write one frame: length prefix + binary value.
fn write_frame<T: Serialize>(stream: &mut TcpStream, frame: &T) -> Result<(), WireError> {
    let mut payload = Vec::with_capacity(128);
    encode_value(&frame.to_value(), &mut payload);
    debug_assert!(payload.len() as u64 <= u64::from(MAX_FRAME));
    let mut buf = Vec::with_capacity(payload.len() + 4);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&payload);
    stream.write_all(&buf)?;
    stream.flush()?;
    Ok(())
}

// ams-lint: begin(no-panic) frame read path — feeds raw socket bytes to
// the decoder; connection handlers must fail with WireError, not die

/// `read_exact` that tolerates read timeouts (re-checking `stop`) so a
/// server-side reader can notice shutdown while blocked, without ever
/// losing partially read bytes.
fn read_exact_interruptible(
    stream: &mut TcpStream,
    buf: &mut [u8],
    stop: &AtomicBool,
) -> Result<(), WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        // ams-lint: allow(no-panic) filled < buf.len() by the loop condition
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Err(WireError::Closed),
            Ok(n) => filled += n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if stop.load(Ordering::Relaxed) {
                    return Err(WireError::Closed);
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

/// Read one frame and decode its payload to a value tree.
fn read_frame_value(stream: &mut TcpStream, stop: &AtomicBool) -> Result<Value, WireError> {
    let mut len = [0u8; 4];
    read_exact_interruptible(stream, &mut len, stop)?;
    let n = u32::from_le_bytes(len);
    if n == 0 || n > MAX_FRAME {
        return Err(WireError::FrameTooLarge(n));
    }
    let mut payload = vec![0u8; n as usize];
    read_exact_interruptible(stream, &mut payload, stop)?;
    decode_value(&payload)
}

/// Read one typed frame.
fn read_frame<T: Deserialize>(stream: &mut TcpStream, stop: &AtomicBool) -> Result<T, WireError> {
    let v = read_frame_value(stream, stop)?;
    T::from_value(&v).map_err(|e| WireError::Malformed(e.to_string()))
}

// ams-lint: end(no-panic)

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Per-connection request-id bookkeeping, shared between the reader
/// (inserts after `submit_with` returns the ticket) and the writer
/// (resolves ticket ids back to request ids as completions arrive).
///
/// A completion can be delivered *during* `submit_with` (cache hit,
/// admission shed) — before the reader has inserted the mapping — so the
/// writer waits on the condvar for a mapping it cannot find yet.
#[derive(Default)]
struct ConnMaps {
    state: Mutex<ConnMapState>,
    mapped: Condvar,
}

#[derive(Default)]
struct ConnMapState {
    /// request id → ticket (for `Cancel` frames and disconnect
    /// cancel-all).
    by_req: HashMap<u64, crate::Ticket>,
    /// ticket id → request id (for echoing completions).
    req_of: HashMap<u64, u64>,
}

impl ConnMaps {
    /// Register a request-id ↔ ticket pair. On a duplicate request id
    /// the ticket is handed back so the caller can cancel it.
    fn insert(&self, req_id: u64, ticket: crate::Ticket) -> Result<(), crate::Ticket> {
        let mut st = self.state.lock().expect("conn maps");
        if st.by_req.contains_key(&req_id) {
            return Err(ticket);
        }
        st.req_of.insert(ticket.id(), req_id);
        st.by_req.insert(req_id, ticket);
        drop(st);
        self.mapped.notify_all();
        Ok(())
    }

    /// Resolve a ticket id to its request id, waiting for the reader's
    /// insert when the completion outran it. Returns `None` only if the
    /// mapping never appears (reader died before inserting — the ticket
    /// then resolved without a wire identity and the event is dropped;
    /// the socket is gone in that case anyway).
    fn wait_req_of(&self, ticket_id: u64, reader_done: &AtomicBool) -> Option<u64> {
        let mut st = self.state.lock().expect("conn maps");
        loop {
            if let Some(req) = st.req_of.get(&ticket_id) {
                return Some(*req);
            }
            if reader_done.load(Ordering::Acquire) {
                return None;
            }
            let (guard, _) = self.mapped.wait_timeout(st, POLL).expect("conn maps");
            st = guard;
        }
    }

    fn remove(&self, ticket_id: u64) {
        let mut st = self.state.lock().expect("conn maps");
        if let Some(req) = st.req_of.remove(&ticket_id) {
            st.by_req.remove(&req);
        }
    }

    fn ticket_of(&self, req_id: u64) -> Option<crate::Ticket> {
        self.state
            .lock()
            .expect("conn maps")
            .by_req
            .get(&req_id)
            .cloned()
    }

    fn cancel_all(&self) {
        let tickets: Vec<crate::Ticket> = self
            .state
            .lock()
            .expect("conn maps")
            .by_req
            .values()
            .cloned()
            .collect();
        // Cancel outside the lock: each cancel delivers a completion the
        // writer may race to translate, and translation takes this lock.
        for t in &tickets {
            t.cancel();
        }
    }
}

/// The TCP front-end: a blocking `std::net` listener that serves the
/// ticket protocol on top of an [`AmsServer`]. One reader/writer thread
/// pair per connection; see the module docs for the protocol.
///
/// ```no_run
/// # use ams_serve::net::NetServer;
/// # use ams_serve::server::AmsServer;
/// # fn demo(server: AmsServer) -> Result<(), Box<dyn std::error::Error>> {
/// let net = NetServer::bind(server, "127.0.0.1:0")?;
/// let addr = net.local_addr();
/// // ... clients connect to `addr` from other processes ...
/// let report = net.shutdown();
/// # Ok(()) }
/// ```
pub struct NetServer {
    server: Arc<AmsServer>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl NetServer {
    /// Bind a listener and start accepting connections on a background
    /// thread. Bind to port 0 for an ephemeral port; [`NetServer::local_addr`]
    /// reports the actual address.
    pub fn bind(server: AmsServer, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let server = Arc::new(server);
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let server = Arc::clone(&server);
                    let conn_stop = Arc::clone(&stop);
                    let handle =
                        std::thread::spawn(move || handle_connection(server, stream, conn_stop));
                    conns.lock().expect("conn registry").push(handle);
                }
            })
        };
        Ok(Self {
            server,
            addr,
            stop,
            accept: Some(accept),
            conns,
        })
    }

    /// The address the listener is bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The wrapped server, for live metrics and local submissions.
    pub fn server(&self) -> &AmsServer {
        &self.server
    }

    /// Stop accepting, disconnect-cancel any connection still open, join
    /// every connection thread, then drain and shut down the inner
    /// server, returning its final report. The conservation equations
    /// hold across everything every connection ever submitted.
    pub fn shutdown(mut self) -> ServeReport {
        self.stop.store(true, Ordering::Release);
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.conns.lock().expect("conn registry"));
        for h in handles {
            let _ = h.join();
        }
        Arc::try_unwrap(self.server)
            .ok()
            .expect("all connection threads joined")
            .shutdown()
    }
}

/// One connection: read `Hello`, open a window-sized in-process client,
/// then pump frames until goodbye/disconnect. The reader thread is the
/// current thread; completions are written back by a spawned writer.
fn handle_connection(server: Arc<AmsServer>, stream: TcpStream, stop: Arc<AtomicBool>) {
    let _ = stream.set_nodelay(true);
    // Timeouts make every blocking read re-check `stop`, so shutdown can
    // interrupt idle connections; `read_exact_interruptible` preserves
    // partial reads across them.
    let _ = stream.set_read_timeout(Some(POLL));
    let mut reader = stream;
    let Ok(writer_stream) = reader.try_clone() else {
        return;
    };

    // The handshake sizes the window; anything else is a protocol error.
    let window = match read_frame::<ClientFrame>(&mut reader, &stop) {
        Ok(ClientFrame::Hello { window }) => window.clamp(1, MAX_WINDOW) as usize,
        _ => return,
    };
    let client = server.client_with_capacity(window);
    drop(server); // the Arc clone; the listener keeps the server alive

    let maps = Arc::new(ConnMaps::default());
    let reader_done = Arc::new(AtomicBool::new(false));
    // Both threads write frames: the writer sends completions, the
    // reader sends synchronous rejections. Frames are serialized under
    // this lock so they never interleave.
    let out = Arc::new(Mutex::new(writer_stream.try_clone().ok()));

    let writer = {
        let client = client.clone();
        let maps = Arc::clone(&maps);
        let reader_done = Arc::clone(&reader_done);
        let out = Arc::clone(&out);
        std::thread::spawn(move || {
            loop {
                match client.recv_timeout(POLL) {
                    Some(ev) => {
                        let ticket_id = ev.ticket();
                        if let Some(req_id) = maps.wait_req_of(ticket_id, &reader_done) {
                            let frame = ServerFrame::Completion(with_wire_id(ev, req_id));
                            // A dead socket is fine: the events still
                            // drain so the window frees and the ledgers
                            // balance; only the delivery is lost.
                            if let Some(stream) = out.lock().expect("conn writer").as_mut() {
                                let _ = write_frame(stream, &frame);
                            }
                        }
                        maps.remove(ticket_id);
                    }
                    None => {
                        if reader_done.load(Ordering::Acquire) && client.outstanding() == 0 {
                            return;
                        }
                    }
                }
            }
        })
    };

    // Reader loop. Any exit except `Goodbye` is an abrupt disconnect:
    // cancel every outstanding ticket of this connection.
    let mut graceful = false;
    while let Ok(frame) = read_frame::<ClientFrame>(&mut reader, &stop) {
        match frame {
            ClientFrame::Hello { .. } => break, // duplicate handshake
            ClientFrame::Goodbye => {
                graceful = true;
                break;
            }
            ClientFrame::Cancel { id } => {
                if let Some(t) = maps.ticket_of(id) {
                    t.cancel();
                }
            }
            ClientFrame::Request(req) => {
                let opts = SubmitOptions {
                    class: req.class,
                    deadline_us: req.deadline_us,
                    value: req.value,
                };
                // This is the flow control: with the window full,
                // `submit_with` blocks and the socket goes unread.
                let outcome = client.submit_with(Arc::new(req.item), opts);
                match outcome.ticket() {
                    Some(ticket) => {
                        if let Err(dup) = maps.insert(req.id, ticket) {
                            // Duplicate id: the just-issued ticket is
                            // cancelled (its event drains unsent) and
                            // the connection dies as a protocol error.
                            dup.cancel();
                            break;
                        }
                    }
                    None => {
                        let frame = ServerFrame::Rejected { id: req.id };
                        if let Some(stream) = out.lock().expect("conn writer").as_mut() {
                            let _ = write_frame(stream, &frame);
                        }
                    }
                }
            }
        }
    }
    if !graceful {
        maps.cancel_all();
    }
    reader_done.store(true, Ordering::Release);
    let _ = writer.join();
    let _ = writer_stream.shutdown(std::net::Shutdown::Both);
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// The remote mirror of the in-process [`Client`]: same submit surface
/// (`submit` / `submit_class` / `submit_with`), same bounded-window
/// semantics (`submit` blocks while `window` requests are in flight),
/// same drain-loop termination (`recv` returns `Ok(None)` at zero
/// outstanding). The differences forced by the transport: submissions
/// return the request id instead of a `Ticket` (cancellation goes
/// through [`NetClient::cancel`] with that id), admission outcomes
/// arrive asynchronously ([`NetEvent::Rejected`] instead of a
/// synchronous `SubmitOutcome::Rejected`), and every call can fail with
/// a [`WireError`].
pub struct NetClient {
    write: Mutex<TcpStream>,
    read: Mutex<TcpStream>,
    window: usize,
    state: Mutex<NcState>,
    not_full: Condvar,
    /// Never set client-side; [`read_frame`] wants a stop flag.
    no_stop: AtomicBool,
}

#[derive(Default)]
struct NcState {
    outstanding: usize,
    next_id: u64,
    goodbye: bool,
}

impl NetClient {
    /// Connect with the default window ([`Client::DEFAULT_CAPACITY`]).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, WireError> {
        Self::connect_with_window(addr, Client::DEFAULT_CAPACITY)
    }

    /// Connect and size the completion window: at most `window` requests
    /// in flight (submitted, their events not yet received); `submit`
    /// blocks past that until `recv` drains. The server clamps to
    /// `1..=`[`MAX_WINDOW`] and sizes its per-connection window the
    /// same, which is the wire's flow control.
    pub fn connect_with_window(addr: impl ToSocketAddrs, window: usize) -> Result<Self, WireError> {
        let stream = TcpStream::connect(addr).map_err(WireError::Io)?;
        let _ = stream.set_nodelay(true);
        let read = stream.try_clone().map_err(WireError::Io)?;
        let mut write = stream;
        let window = (window as u64).clamp(1, MAX_WINDOW) as usize;
        write_frame(
            &mut write,
            &ClientFrame::Hello {
                window: window as u64,
            },
        )?;
        Ok(Self {
            write: Mutex::new(write),
            read: Mutex::new(read),
            window,
            state: Mutex::new(NcState::default()),
            not_full: Condvar::new(),
            no_stop: AtomicBool::new(false),
        })
    }

    /// Submit one item (class 0, class-default economics), returning its
    /// request id. Blocks while the window is full.
    pub fn submit(&self, item: Arc<ItemTruth>) -> Result<u64, WireError> {
        self.submit_with(item, SubmitOptions::default())
    }

    /// [`NetClient::submit`] with an explicit SLO class.
    pub fn submit_class(&self, item: Arc<ItemTruth>, class: usize) -> Result<u64, WireError> {
        self.submit_with(item, SubmitOptions::class(class))
    }

    /// [`NetClient::submit`] with full per-ticket economics, mirroring
    /// [`Client::submit_with`].
    pub fn submit_with(&self, item: Arc<ItemTruth>, opts: SubmitOptions) -> Result<u64, WireError> {
        let id = {
            let mut st = self.state.lock().expect("net client");
            if st.goodbye {
                return Err(WireError::Protocol("submit after goodbye".into()));
            }
            while st.outstanding >= self.window {
                st = self.not_full.wait(st).expect("net client");
            }
            st.outstanding += 1;
            let id = st.next_id;
            st.next_id += 1;
            id
        };
        let frame = ClientFrame::Request(WireRequest {
            id,
            item: (*item).clone(),
            class: opts.class,
            deadline_us: opts.deadline_us,
            value: opts.value,
        });
        let res = write_frame(&mut self.write.lock().expect("net client write"), &frame);
        if let Err(e) = res {
            // The request never left: release its window slot.
            let mut st = self.state.lock().expect("net client");
            st.outstanding -= 1;
            drop(st);
            self.not_full.notify_one();
            return Err(e);
        }
        Ok(id)
    }

    /// Request cancellation of an in-flight request. Exactly like
    /// [`Ticket::cancel`](crate::Ticket::cancel), the race is resolved
    /// server-side; the terminal event reports what actually happened.
    pub fn cancel(&self, id: u64) -> Result<(), WireError> {
        write_frame(
            &mut self.write.lock().expect("net client write"),
            &ClientFrame::Cancel { id },
        )
    }

    /// Blocking receive of the next terminal event, in server delivery
    /// order. Returns `Ok(None)` when nothing is outstanding — so a
    /// drain loop terminates, mirroring [`Client::recv`].
    pub fn recv(&self) -> Result<Option<NetEvent>, WireError> {
        if self.state.lock().expect("net client").outstanding == 0 {
            return Ok(None);
        }
        let frame = read_frame::<ServerFrame>(
            &mut self.read.lock().expect("net client read"),
            &self.no_stop,
        )?;
        let ev = match frame {
            ServerFrame::Completion(c) => NetEvent::Completion(c),
            ServerFrame::Rejected { id } => NetEvent::Rejected { id },
        };
        let mut st = self.state.lock().expect("net client");
        st.outstanding = st.outstanding.saturating_sub(1);
        drop(st);
        self.not_full.notify_one();
        Ok(Some(ev))
    }

    /// Receive every remaining outstanding event (blocking), mirroring a
    /// full in-process drain loop.
    pub fn drain(&self) -> Result<Vec<NetEvent>, WireError> {
        let mut events = Vec::new();
        while let Some(ev) = self.recv()? {
            events.push(ev);
        }
        Ok(events)
    }

    /// Requests in flight: submitted, their events not yet received.
    pub fn outstanding(&self) -> usize {
        self.state.lock().expect("net client").outstanding
    }

    /// The window capacity.
    pub fn capacity(&self) -> usize {
        self.window
    }

    /// Graceful close: tell the server to stop reading and let every
    /// outstanding request resolve. Further submissions error; `recv`
    /// keeps delivering until the window drains.
    pub fn goodbye(&self) -> Result<(), WireError> {
        let mut st = self.state.lock().expect("net client");
        if st.goodbye {
            return Ok(());
        }
        st.goodbye = true;
        drop(st);
        write_frame(
            &mut self.write.lock().expect("net client write"),
            &ClientFrame::Goodbye,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: Value) {
        let mut buf = Vec::new();
        encode_value(&v, &mut buf);
        let back = decode_value(&buf).expect("round trip decodes");
        // Debug compare instead of PartialEq so NaN round trips count.
        assert_eq!(format!("{back:?}"), format!("{v:?}"));
        // Float bit-exactness is the whole point of the binary codec.
        if let (Value::F64(a), Value::F64(b)) = (&v, &back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn codec_round_trips_scalars_and_containers() {
        round_trip(Value::Null);
        round_trip(Value::Bool(true));
        round_trip(Value::U64(u64::MAX));
        round_trip(Value::I64(-1));
        round_trip(Value::I64(i64::MIN));
        round_trip(Value::F64(0.1 + 0.2));
        round_trip(Value::F64(f64::NAN)); // bit-compare via to_bits path
        round_trip(Value::Str("héllo".into()));
        round_trip(Value::Array(vec![Value::U64(1), Value::Str("x".into())]));
        round_trip(Value::Object(vec![
            ("a".into(), Value::Null),
            ("b".into(), Value::Array(vec![Value::F64(1.5)])),
        ]));
    }

    #[test]
    fn decoder_rejects_garbage_without_panicking() {
        assert!(decode_value(&[]).is_err());
        assert!(decode_value(&[0xff]).is_err());
        assert!(decode_value(&[TAG_STR, 0x05, b'a']).is_err()); // truncated string
        assert!(decode_value(&[TAG_ARRAY, 0xff, 0xff, 0xff, 0x7f]).is_err()); // huge count
        assert!(decode_value(&[TAG_NULL, TAG_NULL]).is_err()); // trailing bytes
        let deep: Vec<u8> = std::iter::repeat_n([TAG_ARRAY, 1], 1000)
            .flatten()
            .collect();
        assert!(decode_value(&deep).is_err()); // nesting bomb
    }
}
