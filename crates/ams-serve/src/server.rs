//! The serving front-end: sharded bounded queues feeding per-shard worker
//! pools over one shared [`AdaptiveModelScheduler`].
//!
//! Life of a request: `submit` routes the item to a shard — by scene-id
//! hash, or by *model affinity* (see [`crate::router`]) so that requests
//! predicted to run the same models coalesce on the same shard — and
//! pushes it into that shard's queue under the configured backpressure
//! policy. A shard worker pops up to the shard's current batch limit,
//! sheds requests whose age has already reached the request timeout,
//! labels the rest through the scheduler, coalesces the batch's model
//! executions into batched invocations on the virtual GPU pool (the
//! `ams-sim` batching model — one memory acquisition and one setup charge
//! per model, marginal cost per extra item), and records the queue-wait /
//! execute latency split. With adaptive batching enabled, each shard's
//! batch limit is retuned online: AIMD on the observed total-latency p99
//! against [`AdaptiveBatchConfig::target_p99_ms`], with the growth step
//! bounded by the calibrated [`BatchLatencyModel`] so the controller never
//! *predictably* overshoots its own target. `shutdown` closes the queues,
//! drains every worker gracefully, and merges the per-worker shards into
//! one [`ServeReport`].

use crate::queue::{BackpressurePolicy, Request, ShardQueue, SubmitOutcome};
use crate::router::{Router, RoutingMode};
use crate::telemetry::{LatencyHistogram, LatencySummary};
use ams_core::framework::{AdaptiveModelScheduler, Budget};
use ams_core::streaming::StreamStats;
use ams_data::ItemTruth;
use ams_models::ModelId;
use ams_sim::{batched_makespan, BatchLatencyModel, Job};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Online batch-limit control: AIMD on the tail latency, bounded by the
/// calibrated batch latency model.
///
/// Each shard starts at the server's configured `max_batch` (clamped into
/// `[min_batch, max_batch]` below) and retunes after every `window`
/// completed requests:
///
/// * observed total-latency p99 **above** `target_p99_ms` → multiplicative
///   decrease (`limit × decrease_factor`, floored at `min_batch`);
/// * otherwise → additive increase (`limit + increase_step`, capped at
///   `max_batch`) — but only if the [`BatchLatencyModel`] predicts the
///   grown batch's execute tail still fits the target. The model's
///   [`growth_ratio`](BatchLatencyModel::growth_ratio) is scale-free, so
///   the prediction `queue_p99 + exec_p99 × ratio` needs no knowledge of
///   absolute model latencies: the step is bounded before it is taken
///   instead of oscillating through a violation it could have foreseen.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveBatchConfig {
    /// Wall-clock total-latency (queue wait + execute) p99 target, ms.
    pub target_p99_ms: u64,
    /// AIMD floor: the limit never shrinks below this. Min 1.
    pub min_batch: usize,
    /// AIMD ceiling: the limit never grows past this.
    pub max_batch: usize,
    /// Completed requests per shard between adjustments. Min 1.
    pub window: u64,
    /// Multiplicative decrease factor in `(0, 1)` applied on violation.
    pub decrease_factor: f64,
    /// Additive increase per compliant window.
    pub increase_step: usize,
}

impl Default for AdaptiveBatchConfig {
    /// 50 ms p99 target, limits in `[1, 32]`, retune every 16 requests,
    /// halve on violation, grow by one otherwise.
    fn default() -> Self {
        Self {
            target_p99_ms: 50,
            min_batch: 1,
            max_batch: 32,
            window: 16,
            decrease_factor: 0.5,
            increase_step: 1,
        }
    }
}

/// Serving front-end configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Shards (each with its own bounded queue). Min 1.
    pub shards: usize,
    /// Workers per shard. Min 1.
    pub workers_per_shard: usize,
    /// Pending-request capacity of each shard queue. Min 1.
    pub queue_capacity: usize,
    /// What a full queue does to the next submission.
    pub policy: BackpressurePolicy,
    /// How submissions map to shards: scene-id hash or model-affinity
    /// routing (see [`crate::router`]).
    pub routing: RoutingMode,
    /// Max requests a worker coalesces into one batched admission. Min 1.
    /// With [`ServeConfig::adaptive`] set this is the *starting* limit;
    /// the controller then retunes each shard online.
    pub max_batch: usize,
    /// Online per-shard batch-limit control (`None` keeps `max_batch`
    /// fixed).
    pub adaptive: Option<AdaptiveBatchConfig>,
    /// Batching linger, ms: once a worker sees the first queued request it
    /// waits up to this long for its batch to fill before executing
    /// (0 = pop immediately). A bounded latency deposit that buys fuller,
    /// better-amortized batches on lightly loaded shards.
    pub batch_linger_ms: u64,
    /// Calibrated setup + marginal latency split for batched invocations.
    pub batch_model: BatchLatencyModel,
    /// Virtual GPU pool each batched invocation packs into, MB.
    pub pool_mb: u32,
    /// Deadline-aware shedding: a dequeued request whose queue age has
    /// reached this many wall-clock milliseconds is shed, not executed
    /// (`None` disables; `Some(0)` sheds everything — useful in tests).
    pub request_timeout_ms: Option<u64>,
    /// Wall-clock milliseconds slept per *virtual* millisecond of each
    /// batch's execution makespan (see
    /// [`ams_core::streaming::StreamProcessor::exec_emulation_scale`]);
    /// batching pays one wait per batch, not per item.
    pub exec_emulation_scale: f64,
    /// Items below this recall increment [`StreamStats::low_recall_items`].
    pub alert_recall: f64,
}

impl Default for ServeConfig {
    /// 4 shards × 1 worker, 64-deep queues, lossless blocking admission,
    /// batches of up to 8 on a 12 GB pool — the paper's single-P100 shape.
    fn default() -> Self {
        Self {
            shards: 4,
            workers_per_shard: 1,
            queue_capacity: 64,
            policy: BackpressurePolicy::default(),
            routing: RoutingMode::default(),
            max_batch: 8,
            adaptive: None,
            batch_linger_ms: 0,
            batch_model: BatchLatencyModel::default(),
            pool_mb: 12_288,
            request_timeout_ms: None,
            exec_emulation_scale: 0.0,
            alert_recall: 0.5,
        }
    }
}

/// One shard's adaptive-batching record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardAdaptive {
    /// Shard index.
    pub shard: usize,
    /// Batch limit when the server drained.
    pub final_max_batch: usize,
    /// Adjustment windows evaluated.
    pub adjustments: u64,
    /// Total-latency p99 of the last evaluated window, µs (0 when the
    /// shard never filled half a window — too little traffic to judge).
    pub last_window_p99_us: u64,
    /// Whether the last evaluated window met the target.
    pub within_target: bool,
    /// Batch limit after each adjustment, in order — the trajectory the
    /// benchmark publishes.
    pub trajectory: Vec<usize>,
}

/// The merged adaptive-batching record (present when the server ran with
/// [`ServeConfig::adaptive`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptiveReport {
    /// The configured total-latency p99 target, ms.
    pub target_p99_ms: u64,
    /// Per-shard controller trajectories.
    pub shards: Vec<ShardAdaptive>,
}

impl AdaptiveReport {
    /// Whether every shard's last evaluated window met the target.
    pub fn all_within_target(&self) -> bool {
        self.shards.iter().all(|s| s.within_target)
    }
}

/// The merged end-of-run serving record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeReport {
    /// Shard count the server ran with.
    pub shards: usize,
    /// Total worker threads.
    pub workers: usize,
    /// Backpressure policy name.
    pub policy: String,
    /// Routing mode name (`"hash"` or `"affinity"`).
    pub routing: String,
    /// Requests routed to their affinity home shard (0 under hash routing).
    pub affinity_hits: u64,
    /// Requests diverted to the least-loaded shard by the load-balance
    /// escape hatch (0 under hash routing).
    pub affinity_spills: u64,
    /// Requests offered to `submit` (accepted + rejected).
    pub offered: u64,
    /// Requests accepted into a queue.
    pub submitted: u64,
    /// Requests labeled to completion.
    pub completed: u64,
    /// Requests refused at admission (full queue under Reject, or closed).
    pub rejected: u64,
    /// Queued requests dropped by the ShedOldest policy.
    pub shed_oldest: u64,
    /// Dequeued requests dropped because their queue age reached the
    /// request timeout.
    pub shed_deadline: u64,
    /// Batched invocation rounds the workers executed (rounds whose every
    /// member was deadline-shed don't count — no work ran).
    pub batches: u64,
    /// Largest executed (post-shedding) batch observed.
    pub max_batch_observed: usize,
    /// Batched model invocations: one per `(model, batch)` group admitted
    /// to the virtual GPU pool. `stats.total_executions /
    /// model_invocations` is the mean coalescing depth — the quantity
    /// affinity routing exists to raise.
    pub model_invocations: u64,
    /// Virtual GPU **bill**: the summed batched invocation times
    /// (`Σ batch_time(model, count)`), i.e. GPU-time consumed, independent
    /// of how invocations packed into the pool. Coalescing shrinks it by
    /// deduplicating setup charges; compare with
    /// [`StreamStats::total_exec_ms`], the unbatched serial bill.
    pub virtual_work_ms: u64,
    /// Sum of the batches' virtual execution *makespans*, ms — the virtual
    /// wall-clock the GPU pool was busy. Batching and pool parallelism
    /// compress this below the serial sum of the same items' execution
    /// times ([`StreamStats::total_exec_ms`]).
    pub virtual_exec_ms: u64,
    /// Wall-clock time requests spent queued.
    pub queue_wait: LatencySummary,
    /// Wall-clock time requests spent in a worker (label + batched wait).
    pub execute: LatencySummary,
    /// Queue wait + execute, per request.
    pub total: LatencySummary,
    /// Merged labeling statistics over completed requests — field-for-field
    /// what a serial [`ams_core::streaming::StreamProcessor`] produces over
    /// the same items when nothing is shed.
    pub stats: StreamStats,
    /// Adaptive-batching trajectories (when the controller ran).
    pub adaptive: Option<AdaptiveReport>,
}

impl ServeReport {
    /// Shed + rejected share of offered load (0 when nothing was offered).
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        (self.rejected + self.shed_oldest + self.shed_deadline) as f64 / self.offered as f64
    }

    /// Every offered request is accounted for exactly once.
    pub fn is_conserved(&self) -> bool {
        self.offered == self.completed + self.rejected + self.shed_oldest + self.shed_deadline
    }

    /// Mean executed requests per batched round (0 when no batch ran).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.completed as f64 / self.batches as f64
    }

    /// Mean model executions coalesced per batched invocation (0 when no
    /// invocation ran): how many same-model items shared one setup charge
    /// on the virtual GPU. Routing that groups similar requests raises
    /// this; 1.0 means batching bought nothing.
    pub fn mean_coalesced(&self) -> f64 {
        if self.model_invocations == 0 {
            return 0.0;
        }
        self.stats.total_executions as f64 / self.model_invocations as f64
    }

    /// Share of the serial virtual GPU bill that batched admission saved,
    /// measured in GPU-time consumed (`1 - virtual_work_ms /
    /// stats.total_exec_ms`; 0 when nothing executed). Pool packing does
    /// not move this number — only coalescing does, so it is the metric
    /// routing quality shows up in.
    pub fn bill_saving_fraction(&self) -> f64 {
        if self.stats.total_exec_ms == 0 {
            return 0.0;
        }
        1.0 - self.virtual_work_ms as f64 / self.stats.total_exec_ms as f64
    }

    /// Share of routed requests that landed on their affinity home shard
    /// (0 when the affinity router never ran — e.g. hash routing).
    pub fn affinity_hit_rate(&self) -> f64 {
        let routed = self.affinity_hits + self.affinity_spills;
        if routed == 0 {
            return 0.0;
        }
        self.affinity_hits as f64 / routed as f64
    }
}

/// One shard's adaptive-batching state: the live limit workers read before
/// every pop, plus the observation window the controller adjusts from.
struct ShardControl {
    limit: AtomicUsize,
    window: Mutex<AdaptiveWindow>,
}

/// The controller's per-window observations and its published trajectory.
#[derive(Default)]
struct AdaptiveWindow {
    execute: LatencyHistogram,
    total: LatencyHistogram,
    adjustments: u64,
    last_window_p99_us: u64,
    last_within_target: bool,
    trajectory: Vec<usize>,
}

impl ShardControl {
    fn new(start_limit: usize) -> Self {
        Self {
            limit: AtomicUsize::new(start_limit),
            window: Mutex::new(AdaptiveWindow {
                last_within_target: true,
                ..AdaptiveWindow::default()
            }),
        }
    }

    /// Record one executed batch's member latencies and retune the limit
    /// once the window fills. One lock per batch, not per request.
    fn observe_batch(
        &self,
        waits: impl Iterator<Item = Duration>,
        exec: Duration,
        acfg: &AdaptiveBatchConfig,
        batch_model: &BatchLatencyModel,
    ) {
        let mut win = self.window.lock().expect("adaptive window");
        for wait in waits {
            win.execute.record(exec);
            win.total.record(wait + exec);
        }
        if win.total.count() < acfg.window {
            return;
        }
        let p99_total = win.total.quantile_us(0.99);
        let p99_exec = win.execute.quantile_us(0.99);
        let target_us = acfg.target_p99_ms.saturating_mul(1000);
        let cur = self.limit.load(Ordering::Relaxed);
        let next = if p99_total > target_us {
            // Violation: multiplicative decrease.
            ((cur as f64 * acfg.decrease_factor) as usize).max(acfg.min_batch)
        } else {
            // Compliant: additive increase, but bounded by the latency
            // model — grow only when the predicted tail still fits.
            let cand = (cur + acfg.increase_step).min(acfg.max_batch.max(acfg.min_batch));
            let ratio = batch_model.growth_ratio(cur, cand);
            let queue_share = p99_total.saturating_sub(p99_exec) as f64;
            let predicted = queue_share + p99_exec as f64 * ratio;
            if predicted <= target_us as f64 {
                cand
            } else {
                cur
            }
        };
        self.limit.store(next, Ordering::Relaxed);
        win.adjustments += 1;
        win.last_window_p99_us = p99_total;
        win.last_within_target = p99_total <= target_us;
        win.trajectory.push(next);
        win.execute = LatencyHistogram::default();
        win.total = LatencyHistogram::default();
    }

    /// Close out the controller at drain: judge a half-full residual window
    /// (enough evidence), discard a thinner one.
    fn into_record(self, shard: usize, acfg: &AdaptiveBatchConfig) -> ShardAdaptive {
        let final_max_batch = self.limit.load(Ordering::Relaxed);
        let mut win = self.window.into_inner().expect("adaptive window");
        if win.total.count() * 2 >= acfg.window.max(1) {
            let p99 = win.total.quantile_us(0.99);
            win.last_window_p99_us = p99;
            win.last_within_target = p99 <= acfg.target_p99_ms.saturating_mul(1000);
        }
        ShardAdaptive {
            shard,
            final_max_batch,
            adjustments: win.adjustments,
            last_window_p99_us: win.last_window_p99_us,
            within_target: win.last_within_target,
            trajectory: win.trajectory,
        }
    }
}

/// Shared server state (queues + router + scheduler), behind one `Arc`.
struct Shared {
    queues: Vec<ShardQueue>,
    router: Router,
    controls: Vec<ShardControl>,
    scheduler: AdaptiveModelScheduler,
    budget: Budget,
    cfg: ServeConfig,
    offered: AtomicU64,
    submitted: AtomicU64,
    rejected: AtomicU64,
}

/// Per-worker accumulators, merged at shutdown.
struct WorkerLocal {
    stats: StreamStats,
    queue_wait: LatencyHistogram,
    execute: LatencyHistogram,
    total: LatencyHistogram,
    completed: u64,
    shed_deadline: u64,
    batches: u64,
    max_batch_observed: usize,
    model_invocations: u64,
    virtual_work_ms: u64,
    virtual_exec_ms: u64,
}

impl WorkerLocal {
    fn new(num_models: usize) -> Self {
        Self {
            stats: StreamStats::with_models(num_models),
            queue_wait: LatencyHistogram::default(),
            execute: LatencyHistogram::default(),
            total: LatencyHistogram::default(),
            completed: 0,
            shed_deadline: 0,
            batches: 0,
            max_batch_observed: 0,
            model_invocations: 0,
            virtual_work_ms: 0,
            virtual_exec_ms: 0,
        }
    }
}

/// The sharded serving front-end.
///
/// ```
/// use ams_core::framework::{AdaptiveModelScheduler, Budget};
/// use ams_core::predictor::OraclePredictor;
/// use ams_data::{Dataset, DatasetProfile, TruthTable};
/// use ams_models::ModelZoo;
/// use ams_serve::{AmsServer, ServeConfig};
/// use std::sync::Arc;
///
/// let zoo = ModelZoo::standard();
/// let ds = Dataset::generate(DatasetProfile::Coco2017, 8, 42);
/// let truth = TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5);
/// let predictor = Box::new(OraclePredictor::new(zoo.len(), 0.5));
/// let scheduler = AdaptiveModelScheduler::new(zoo, predictor, 0.5, 42);
///
/// let server = AmsServer::start(scheduler, Budget::Deadline { ms: 1000 }, ServeConfig::default());
/// for item in truth.items() {
///     server.submit(Arc::new(item.clone()));
/// }
/// let report = server.shutdown();
/// assert_eq!(report.completed, 8);
/// assert!(report.is_conserved());
/// ```
pub struct AmsServer {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<WorkerLocal>>,
}

impl AmsServer {
    /// Spin up the shard queues, the router, and the worker threads.
    pub fn start(scheduler: AdaptiveModelScheduler, budget: Budget, cfg: ServeConfig) -> Self {
        let cfg = ServeConfig {
            shards: cfg.shards.max(1),
            workers_per_shard: cfg.workers_per_shard.max(1),
            queue_capacity: cfg.queue_capacity.max(1),
            max_batch: cfg.max_batch.max(1),
            adaptive: cfg.adaptive.map(|a| AdaptiveBatchConfig {
                min_batch: a.min_batch.max(1),
                max_batch: a.max_batch.max(a.min_batch.max(1)),
                window: a.window.max(1),
                increase_step: a.increase_step.max(1),
                decrease_factor: a.decrease_factor.clamp(0.1, 0.99),
                ..a
            }),
            ..cfg
        };
        let queues: Vec<ShardQueue> = (0..cfg.shards)
            .map(|_| ShardQueue::new(cfg.queue_capacity, cfg.policy))
            .collect();
        // The controller starts every shard at the configured static limit,
        // clamped into the adaptive band.
        let start_limit = cfg.adaptive.map_or(cfg.max_batch, |a| {
            cfg.max_batch
                .clamp(a.min_batch, a.max_batch.max(a.min_batch))
        });
        let controls = (0..cfg.shards)
            .map(|_| ShardControl::new(start_limit))
            .collect();
        let shared = Arc::new(Shared {
            router: Router::new(cfg.routing, cfg.shards),
            queues,
            controls,
            scheduler,
            budget,
            cfg,
            offered: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        });
        let workers = (0..shared.cfg.shards * shared.cfg.workers_per_shard)
            .map(|w| {
                let shared = Arc::clone(&shared);
                let shard = w / shared.cfg.workers_per_shard;
                std::thread::spawn(move || worker_loop(&shared, shard))
            })
            .collect();
        Self { shared, workers }
    }

    /// The shard an item routes to (Fibonacci-hashed scene id — the hash
    /// mode's home shard). Under affinity routing the live router may
    /// divert a submission elsewhere; this accessor stays the stable
    /// hash-partition answer.
    pub fn shard_of(&self, item: &ItemTruth) -> usize {
        (item.scene_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize % self.shared.cfg.shards
    }

    /// Submit one item for labeling under the shard's backpressure policy.
    /// Under [`BackpressurePolicy::Block`] this call waits for queue space.
    pub fn submit(&self, item: Arc<ItemTruth>) -> SubmitOutcome {
        let route = self
            .shared
            .router
            .route(&self.shared.scheduler, &item, &self.shared.queues);
        self.shared.offered.fetch_add(1, Ordering::Relaxed);
        let outcome = self.shared.queues[route.shard].push(item, route.signature);
        match outcome {
            SubmitOutcome::Enqueued | SubmitOutcome::EnqueuedShedOldest => {
                self.shared.submitted.fetch_add(1, Ordering::Relaxed);
            }
            SubmitOutcome::Rejected => {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
            }
        }
        outcome
    }

    /// Requests currently queued across all shards (racy snapshot).
    pub fn pending(&self) -> usize {
        self.shared.queues.iter().map(ShardQueue::len).sum()
    }

    /// Close admission, drain every queue through the workers, join them,
    /// and merge the per-worker shards into the final report.
    pub fn shutdown(self) -> ServeReport {
        for q in &self.shared.queues {
            q.close();
        }
        let num_models = self.shared.scheduler.zoo().len();
        let mut merged = WorkerLocal::new(num_models);
        for handle in self.workers {
            let local = handle.join().expect("serve worker panicked");
            merged.stats.merge(&local.stats);
            merged.queue_wait.merge(&local.queue_wait);
            merged.execute.merge(&local.execute);
            merged.total.merge(&local.total);
            merged.completed += local.completed;
            merged.shed_deadline += local.shed_deadline;
            merged.batches += local.batches;
            merged.max_batch_observed = merged.max_batch_observed.max(local.max_batch_observed);
            merged.model_invocations += local.model_invocations;
            merged.virtual_work_ms += local.virtual_work_ms;
            merged.virtual_exec_ms += local.virtual_exec_ms;
        }
        let shed_oldest: u64 = self
            .shared
            .queues
            .iter()
            .map(ShardQueue::shed_oldest_count)
            .sum();
        let shared = Arc::try_unwrap(self.shared)
            .unwrap_or_else(|_| panic!("workers joined; no other Arc holder remains"));
        let adaptive = shared.cfg.adaptive.map(|acfg| AdaptiveReport {
            target_p99_ms: acfg.target_p99_ms,
            shards: shared
                .controls
                .into_iter()
                .enumerate()
                .map(|(shard, ctl)| ctl.into_record(shard, &acfg))
                .collect(),
        });
        ServeReport {
            shards: shared.cfg.shards,
            workers: shared.cfg.shards * shared.cfg.workers_per_shard,
            policy: shared.cfg.policy.name().to_string(),
            routing: shared.router.mode().name().to_string(),
            affinity_hits: shared.router.affinity_hits(),
            affinity_spills: shared.router.affinity_spills(),
            offered: shared.offered.load(Ordering::Relaxed),
            submitted: shared.submitted.load(Ordering::Relaxed),
            completed: merged.completed,
            rejected: shared.rejected.load(Ordering::Relaxed),
            shed_oldest,
            shed_deadline: merged.shed_deadline,
            batches: merged.batches,
            max_batch_observed: merged.max_batch_observed,
            model_invocations: merged.model_invocations,
            virtual_work_ms: merged.virtual_work_ms,
            virtual_exec_ms: merged.virtual_exec_ms,
            queue_wait: merged.queue_wait.summary(),
            execute: merged.execute.summary(),
            total: merged.total.summary(),
            stats: merged.stats,
            adaptive,
        }
    }
}

/// One worker: pop → shed stale → label → batch-admit → record, until the
/// shard queue closes and drains.
fn worker_loop(shared: &Shared, shard: usize) -> WorkerLocal {
    let zoo = shared.scheduler.zoo();
    let n = zoo.len();
    let mut local = WorkerLocal::new(n);
    let mut runs_per_model = vec![0usize; n];
    loop {
        // Under adaptive batching the shard's live limit replaces the
        // static one; the controller retunes it between pops.
        let limit = if shared.cfg.adaptive.is_some() {
            shared.controls[shard].limit.load(Ordering::Relaxed)
        } else {
            shared.cfg.max_batch
        };
        let batch = shared.queues[shard]
            .pop_batch_lingering(limit, Duration::from_millis(shared.cfg.batch_linger_ms));
        if batch.is_empty() {
            return local;
        }
        let exec_start = Instant::now();

        // Deadline-aware shedding: a request whose queue age has already
        // reached the timeout is dropped before any work is spent on it.
        // A shed request is accounted exactly once — in `shed_deadline` —
        // and never reaches the stats (the recall denominator) or the
        // latency histograms.
        let mut survivors: Vec<(Request, Duration)> = Vec::with_capacity(batch.len());
        for req in batch {
            let wait = req.enqueued_at.elapsed();
            let expired = shared
                .cfg
                .request_timeout_ms
                .is_some_and(|t| wait.as_micros() as u64 >= t.saturating_mul(1000));
            if expired {
                local.shed_deadline += 1;
            } else {
                survivors.push((req, wait));
            }
        }
        if survivors.is_empty() {
            // The whole round was shed: no batch executed, nothing to
            // observe or charge.
            continue;
        }
        local.batches += 1;
        local.max_batch_observed = local.max_batch_observed.max(survivors.len());

        // Label each survivor; collect the batch's per-model run counts.
        runs_per_model.fill(0);
        let outcomes: Vec<_> = survivors
            .iter()
            .map(|(req, _)| {
                let outcome = shared.scheduler.label_item(&req.item, shared.budget);
                for &m in &outcome.executed {
                    runs_per_model[m.index()] += 1;
                }
                outcome
            })
            .collect();

        // Batched admission: one invocation per model over the whole
        // coalesced batch, packed into the virtual GPU pool.
        let groups: Vec<(Job, usize)> = runs_per_model
            .iter()
            .enumerate()
            .filter(|&(_, &count)| count > 0)
            .map(|(m, &count)| {
                let spec = zoo.spec(ModelId(m as u8));
                (
                    Job {
                        id: m,
                        time_ms: spec.time_ms,
                        mem_mb: spec.mem_mb,
                    },
                    count,
                )
            })
            .collect();
        let makespan_ms = batched_makespan(&groups, shared.cfg.pool_mb, &shared.cfg.batch_model);
        local.model_invocations += groups.len() as u64;
        local.virtual_work_ms += groups
            .iter()
            .map(|&(job, count)| shared.cfg.batch_model.batch_time_ms(job.time_ms, count))
            .sum::<u64>();
        local.virtual_exec_ms += makespan_ms;
        if shared.cfg.exec_emulation_scale > 0.0 && makespan_ms > 0 {
            let wait_ms = makespan_ms as f64 * shared.cfg.exec_emulation_scale;
            std::thread::sleep(Duration::from_secs_f64(wait_ms / 1000.0));
        }

        // Whole batch completes together; each member is charged the
        // batch's execute span on top of its own queue wait.
        let exec_elapsed = exec_start.elapsed();
        for ((_, wait), outcome) in survivors.iter().zip(&outcomes) {
            local.stats.absorb(outcome, shared.cfg.alert_recall);
            local.queue_wait.record(*wait);
            local.execute.record(exec_elapsed);
            local.total.record(*wait + exec_elapsed);
            local.completed += 1;
        }
        if let Some(acfg) = &shared.cfg.adaptive {
            shared.controls[shard].observe_batch(
                survivors.iter().map(|(_, wait)| *wait),
                exec_elapsed,
                acfg,
                &shared.cfg.batch_model,
            );
        }
    }
}
