//! The serving front-end: sharded bounded queues feeding per-shard worker
//! pools over one shared [`AdaptiveModelScheduler`].
//!
//! Life of a request: `submit` routes the item to a shard — by scene-id
//! hash, or by *model affinity* (see [`crate::router`]) so that requests
//! predicted to run the same models coalesce on the same shard — and
//! pushes it into that shard's queue under the configured backpressure
//! policy. A shard worker pops up to the shard's current batch limit,
//! sheds requests whose age has already reached the request timeout,
//! labels the rest through the scheduler, coalesces the batch's model
//! executions into batched invocations on the virtual GPU pool (the
//! `ams-sim` batching model — one memory acquisition and one setup charge
//! per model, marginal cost per extra item), and records the queue-wait /
//! execute latency split. With adaptive batching enabled, each shard's
//! batch limit is retuned online: AIMD on the observed total-latency p99
//! against [`AdaptiveBatchConfig::target_p99_ms`], with the growth step
//! bounded by the calibrated [`BatchLatencyModel`] so the controller never
//! *predictably* overshoots its own target. `shutdown` closes the queues,
//! drains every worker gracefully, and merges the per-worker shards into
//! one [`ServeReport`].
//!
//! ## The client API
//!
//! [`AmsServer::client`] opens a request/response [`Client`]: its
//! `submit`/`submit_class` return `SubmitOutcome<Ticket>`, where the
//! [`Ticket`] is a cancellable handle tied to exactly one terminal
//! [`Completion`] event — `Labeled` (the request's own labels, chosen
//! models, value banked, queue-wait/execute breakdown), `Shed` (which
//! loss path took it, delivered at eviction time), or `Cancelled`.
//! Events arrive on the client's bounded completion queue
//! ([`Client::recv`] / [`Client::try_recv`] / [`Client::drain`]). The
//! original fire-and-forget [`AmsServer::submit`] survives as a thin
//! wrapper over the same path with no ticket issued, so aggregate-only
//! callers (and the serve==serial equivalence gates) are untouched.
//! Dropping an [`AmsServer`] without calling `shutdown` aborts it:
//! queued-but-unserved requests resolve to `Shed(Drain)` and every worker
//! is joined — no detached threads survive the drop.

use crate::adapt::{AdaptConfig, AdaptReport, AdaptRuntime, AdaptShared, WorkerAdapt};
use crate::cache::{
    CacheConfig, CacheReport, CachedResult, ClassCache, Follower, LabelCache, Lookup, PendingEntry,
};
use crate::completion::{
    CancelLedger, Completion, CompletionQueue, CompletionSlot, LabelResult, ShedReason, Ticket,
};
use crate::obs::{
    CacheGauges, Event, EventKind, MetricsSnapshot, ObsConfig, ObsReport, ServerObs, ShardSample,
    TraceReport, NO_SHARD, NO_TICKET,
};
use crate::queue::{BackpressurePolicy, ClassShed, Request, ShardQueue, SubmitOutcome};
use crate::router::{fib_shard, Router, RoutingMode};
use crate::telemetry::{LatencyHistogram, LatencySummary};
use ams_core::framework::{AdaptiveModelScheduler, Budget};
use ams_core::streaming::StreamStats;
use ams_data::ItemTruth;
use ams_models::ModelId;
use ams_sim::{batched_makespan, BatchLatencyModel, Job};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Online batch-limit control: AIMD on the tail latency, bounded by the
/// calibrated batch latency model.
///
/// Each shard starts at the server's configured `max_batch` (clamped into
/// `[min_batch, max_batch]` below) and retunes after every `window`
/// completed requests:
///
/// * observed total-latency p99 **above** `target_p99_ms` → multiplicative
///   decrease (`limit × decrease_factor`, floored at `min_batch`);
/// * otherwise → additive increase (`limit + increase_step`, capped at
///   `max_batch`) — but only if the [`BatchLatencyModel`] predicts the
///   grown batch's execute tail still fits the target. The model's
///   [`growth_ratio`](BatchLatencyModel::growth_ratio) is scale-free, so
///   the prediction `queue_p99 + exec_p99 × ratio` needs no knowledge of
///   absolute model latencies: the step is bounded before it is taken
///   instead of oscillating through a violation it could have foreseen.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveBatchConfig {
    /// Wall-clock total-latency (queue wait + execute) p99 target, ms.
    pub target_p99_ms: u64,
    /// AIMD floor: the limit never shrinks below this. Min 1.
    pub min_batch: usize,
    /// AIMD ceiling: the limit never grows past this.
    pub max_batch: usize,
    /// Completed requests per shard between adjustments. Min 1.
    pub window: u64,
    /// Multiplicative decrease factor in `(0, 1)` applied on violation.
    pub decrease_factor: f64,
    /// Additive increase per compliant window.
    pub increase_step: usize,
}

impl Default for AdaptiveBatchConfig {
    /// 50 ms p99 target, limits in `[1, 32]`, retune every 16 requests,
    /// halve on violation, grow by one otherwise.
    fn default() -> Self {
        Self {
            target_p99_ms: 50,
            min_batch: 1,
            max_batch: 32,
            window: 16,
            decrease_factor: 0.5,
            increase_step: 1,
        }
    }
}

/// One request class of the service-level objective: a deadline and a
/// value weight.
///
/// A request of this class must complete within `deadline_ms` of entering
/// its queue to be worth anything; its predicted label value (the
/// scheduler's cheap affinity-value scan, computed during routing) is
/// scaled by `weight`, so an interactive class can be worth several times
/// a bulk class to the shedding economics. The paper's objective is the
/// aggregate *value* of labels produced under a time budget — the class
/// carries exactly the two numbers that objective needs per request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SloClass {
    /// Stable class name for reports.
    pub name: String,
    /// Wall-clock completion deadline from enqueue, ms.
    pub deadline_ms: u64,
    /// Multiplier on the request's predicted label value.
    pub weight: f64,
    /// Admission reservation: the fraction of every shard queue's slots
    /// guaranteed to this class (0.0 = no reserve, purely shared slots).
    /// A burst of another class can fill the shared pool but never the
    /// slots this class holds in reserve, so it cannot starve this class
    /// of *admission*. Fractions are clamped so the per-queue reserved
    /// slots never exceed the capacity (earlier classes keep their full
    /// reserve).
    pub reserve: f64,
}

impl SloClass {
    /// A named class with the given deadline and weight (no reservation).
    pub fn new(name: impl Into<String>, deadline_ms: u64, weight: f64) -> Self {
        Self {
            name: name.into(),
            deadline_ms,
            weight: weight.max(0.0),
            reserve: 0.0,
        }
    }

    /// Guarantee the class `fraction` of every shard queue's slots at
    /// admission (clamped into `[0, 1]`).
    pub fn with_reserve(mut self, fraction: f64) -> Self {
        self.reserve = fraction.clamp(0.0, 1.0);
        self
    }
}

/// SLO-aware admission and shedding configuration.
///
/// With classes configured, every request carries a deadline and a
/// weighted value, and three behaviors become selectable (all off =
/// "blind" mode — identical scheduling to a classless server, but with the
/// per-class value/latency ledger still recorded, which is what makes an
/// honest blind-vs-aware comparison on the same stream possible):
///
/// * **admission control** — `submit` predicts the shard's queue wait
///   (depth × the amortized per-request batch time the workers publish,
///   i.e. the same headroom signal the adaptive batch controller tunes
///   against) and sheds a request *before* it occupies a slot when the
///   prediction already exceeds its deadline;
/// * **value-weighted shedding** — on ShedOldest overflow, evict the
///   queued request with the worst value-per-remaining-deadline (expired
///   requests first — they are dead weight) instead of the head;
/// * **EDF dequeue** — workers assemble batches around the
///   earliest-deadline request instead of the oldest, composing with
///   signature coalescing (the urgent head still gets a signature-pure
///   batch).
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// The request classes. Class 0 is the default for
    /// [`AmsServer::submit`]; [`AmsServer::submit_class`] picks others.
    /// Normalized to at least one class at server start.
    pub classes: Vec<SloClass>,
    /// Shed at admission when the predicted queue wait exceeds the
    /// request's deadline.
    pub admission_control: bool,
    /// Evict the worst value-per-remaining-deadline request on overflow
    /// instead of the head.
    pub value_weighted_shedding: bool,
    /// Earliest-deadline-first head selection at dequeue.
    pub edf_dequeue: bool,
}

impl SloConfig {
    /// All three SLO-aware behaviors on.
    pub fn aware(classes: Vec<SloClass>) -> Self {
        Self {
            classes,
            admission_control: true,
            value_weighted_shedding: true,
            edf_dequeue: true,
        }
    }

    /// Classes tracked (deadlines, values, per-class ledger) but every
    /// SLO-aware behavior off: oldest-first eviction, FIFO dequeue, no
    /// admission control — the blind baseline.
    pub fn blind(classes: Vec<SloClass>) -> Self {
        Self {
            classes,
            admission_control: false,
            value_weighted_shedding: false,
            edf_dequeue: false,
        }
    }
}

impl Default for SloConfig {
    /// One "default" class: 1 s deadline, unit weight, all behaviors on.
    fn default() -> Self {
        Self::aware(vec![SloClass::new("default", 1_000, 1.0)])
    }
}

/// Serving front-end configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Shards (each with its own bounded queue). Min 1.
    pub shards: usize,
    /// Workers per shard. Min 1.
    pub workers_per_shard: usize,
    /// Pending-request capacity of each shard queue. Min 1.
    pub queue_capacity: usize,
    /// What a full queue does to the next submission.
    pub policy: BackpressurePolicy,
    /// How submissions map to shards: scene-id hash or model-affinity
    /// routing (see [`crate::router`]).
    pub routing: RoutingMode,
    /// Max requests a worker coalesces into one batched admission. Min 1.
    /// With [`ServeConfig::adaptive`] set this is the *starting* limit;
    /// the controller then retunes each shard online.
    pub max_batch: usize,
    /// Online per-shard batch-limit control (`None` keeps `max_batch`
    /// fixed).
    pub adaptive: Option<AdaptiveBatchConfig>,
    /// Batching linger, ms: once a worker sees the first queued request it
    /// waits up to this long for its batch to fill before executing
    /// (0 = pop immediately). A bounded latency deposit that buys fuller,
    /// better-amortized batches on lightly loaded shards.
    pub batch_linger_ms: u64,
    /// Calibrated setup + marginal latency split for batched invocations.
    pub batch_model: BatchLatencyModel,
    /// Virtual GPU pool each batched invocation packs into, MB.
    pub pool_mb: u32,
    /// Deadline-aware shedding: a dequeued request whose queue age has
    /// reached this many wall-clock milliseconds is shed, not executed
    /// (`None` disables; `Some(0)` sheds everything — useful in tests).
    /// With [`ServeConfig::slo`] set, the per-class deadlines govern
    /// instead and this field is ignored.
    pub request_timeout_ms: Option<u64>,
    /// SLO classes plus the SLO-aware admission/shedding behaviors
    /// (`None` = classless serving, every request unit-valued and
    /// deadline-governed by `request_timeout_ms` alone).
    pub slo: Option<SloConfig>,
    /// Wall-clock milliseconds slept per *virtual* millisecond of each
    /// batch's execution makespan (see
    /// [`ams_core::streaming::StreamProcessor::exec_emulation_scale`]);
    /// batching pays one wait per batch, not per item.
    pub exec_emulation_scale: f64,
    /// Items below this recall increment [`StreamStats::low_recall_items`].
    pub alert_recall: f64,
    /// Content-addressed label cache with in-flight coalescing (see
    /// [`crate::cache`]); `None` disables it — on a unique stream the
    /// cached and uncached servers behave identically.
    pub cache: Option<CacheConfig>,
    /// Live observability: the lifecycle event stream, the rolling
    /// metrics registry behind [`AmsServer::metrics_snapshot`], and the
    /// shed/deadline-miss flight recorder (see [`crate::obs`]). `None`
    /// disables the whole layer — no rings, no aggregator thread, and a
    /// branch-on-`None` as the only hot-path residue.
    pub obs: Option<ObsConfig>,
    /// Online adaptation (see [`crate::adapt`]): a background trainer
    /// taps served outcomes and hot-swaps updated agent weights into the
    /// predict path, generation by generation. `None` serves the
    /// scheduler's own predictor frozen — byte-identical behavior to a
    /// server built without adaptation.
    pub adapt: Option<AdaptConfig>,
}

impl Default for ServeConfig {
    /// 4 shards × 1 worker, 64-deep queues, lossless blocking admission,
    /// batches of up to 8 on a 12 GB pool — the paper's single-P100 shape.
    fn default() -> Self {
        Self {
            shards: 4,
            workers_per_shard: 1,
            queue_capacity: 64,
            policy: BackpressurePolicy::default(),
            routing: RoutingMode::default(),
            max_batch: 8,
            adaptive: None,
            batch_linger_ms: 0,
            batch_model: BatchLatencyModel::default(),
            pool_mb: 12_288,
            request_timeout_ms: None,
            slo: None,
            exec_emulation_scale: 0.0,
            alert_recall: 0.5,
            cache: None,
            obs: None,
            adapt: None,
        }
    }
}

/// One shard's adaptive-batching record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardAdaptive {
    /// Shard index.
    pub shard: usize,
    /// Batch limit when the server drained.
    pub final_max_batch: usize,
    /// Adjustment windows evaluated.
    pub adjustments: u64,
    /// Total-latency p99 of the last evaluated window, µs (0 when the
    /// shard never filled half a window — too little traffic to judge).
    pub last_window_p99_us: u64,
    /// Whether the last evaluated window met the target.
    pub within_target: bool,
    /// Batch limit after each adjustment, in order — the trajectory the
    /// benchmark publishes.
    pub trajectory: Vec<usize>,
}

/// The merged adaptive-batching record (present when the server ran with
/// [`ServeConfig::adaptive`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptiveReport {
    /// The configured total-latency p99 target, ms.
    pub target_p99_ms: u64,
    /// Per-shard controller trajectories.
    pub shards: Vec<ShardAdaptive>,
}

impl AdaptiveReport {
    /// Whether every shard's last evaluated window met the target.
    pub fn all_within_target(&self) -> bool {
        self.shards.iter().all(|s| s.within_target)
    }
}

/// One SLO class's merged ledger: every loss path, the value accounting,
/// and the class's own latency distribution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassReport {
    /// Class index.
    pub class: usize,
    /// Class name.
    pub name: String,
    /// The class's deadline, ms.
    pub deadline_ms: u64,
    /// The class's value weight.
    pub weight: f64,
    /// Requests of this class offered to `submit`.
    pub offered: u64,
    /// Requests labeled to completion.
    pub completed: u64,
    /// Completed requests whose total latency met the class deadline.
    pub deadline_met: u64,
    /// Requests refused at admission (full queue under Reject, or closed).
    pub rejected: u64,
    /// Requests shed by admission control (predicted wait > deadline).
    pub shed_admission: u64,
    /// Requests evicted from a queue on overflow (ShedOldest).
    pub shed_oldest: u64,
    /// Dequeued requests shed because their deadline budget was exhausted.
    pub shed_deadline: u64,
    /// Tickets of this class cancelled before a worker claimed them.
    pub cancelled: u64,
    /// Requests answered from the label cache before admission (exact
    /// content-hash hits; zero queue wait, zero bill).
    pub cache_hit: u64,
    /// Requests coalesced onto an identical in-flight request and
    /// completed by its fan-out (one execution, many completions).
    pub coalesced: u64,
    /// Summed predicted (weighted) value delivered from the cache —
    /// hits plus fanned-out followers. The bill-free share of the
    /// class's banked value.
    pub value_cached: f64,
    /// Summed predicted (weighted) value of the cancelled tickets —
    /// tracked apart from `value_shed`: the *client* withdrew this value,
    /// the service didn't lose it.
    pub value_cancelled: f64,
    /// Summed predicted (weighted) value of offered requests.
    pub value_offered: f64,
    /// Summed value of completed requests — the value the service banked.
    pub value_completed: f64,
    /// The subset of `value_completed` delivered *past* the class
    /// deadline — capacity spent on labels the client had already given
    /// up on. SLO-aware scheduling shrinks this by serving urgent work
    /// first and shedding doomed work before it occupies a slot.
    pub value_late: f64,
    /// Summed value of every non-completed request (all four loss paths)
    /// — the class's value-weighted shed loss.
    pub value_shed: f64,
    /// Total (queue wait + execute) latency of completed requests.
    pub total: LatencySummary,
}

impl ClassReport {
    /// Every offered request of the class is accounted for exactly once
    /// (completions, all four loss paths, cancellations, and the two
    /// cache buckets — a hit and a fanned-out follower each resolve
    /// exactly one ticket too).
    pub fn is_conserved(&self) -> bool {
        self.offered
            == self.completed
                + self.rejected
                + self.shed_admission
                + self.shed_oldest
                + self.shed_deadline
                + self.cancelled
                + self.cache_hit
                + self.coalesced
    }

    /// Share of offered requests that completed within the class deadline
    /// (0 when nothing was offered). Offered, not completed, is the
    /// denominator: a shed request missed its deadline as far as the
    /// client is concerned.
    pub fn deadline_met_rate(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.deadline_met as f64 / self.offered as f64
    }
}

/// The merged SLO record (present when the server ran with
/// [`ServeConfig::slo`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SloReport {
    /// Whether admission control ran.
    pub admission_control: bool,
    /// Whether overflow eviction was value-weighted.
    pub value_weighted_shedding: bool,
    /// Whether dequeue was earliest-deadline-first.
    pub edf_dequeue: bool,
    /// Per-class ledgers, indexed by class.
    pub classes: Vec<ClassReport>,
}

impl SloReport {
    /// The value-weighted shed loss: every unit of offered value that was
    /// *not delivered within its deadline* — shed value plus late-completed
    /// value. A label produced past its deadline is as lost to the client
    /// as a shed one (the deadline is what defines its worth), and counting
    /// it keeps the metric honest: a blind server cannot launder doomed
    /// requests into "banked value" by completing them late. This is the
    /// quantity SLO-aware shedding exists to minimize.
    pub fn value_shed_loss(&self) -> f64 {
        self.classes
            .iter()
            .map(|c| c.value_shed + c.value_late)
            .sum()
    }

    /// Summed banked value across classes.
    pub fn value_completed(&self) -> f64 {
        self.classes.iter().map(|c| c.value_completed).sum()
    }

    /// Summed value delivered past its deadline across classes.
    pub fn value_late(&self) -> f64 {
        self.classes.iter().map(|c| c.value_late).sum()
    }

    /// Share of all offered requests that completed within their class
    /// deadline (0 when nothing was offered).
    pub fn deadline_met_rate(&self) -> f64 {
        let offered: u64 = self.classes.iter().map(|c| c.offered).sum();
        if offered == 0 {
            return 0.0;
        }
        self.classes.iter().map(|c| c.deadline_met).sum::<u64>() as f64 / offered as f64
    }

    /// Every class ledger balances exactly.
    pub fn is_conserved(&self) -> bool {
        self.classes.iter().all(ClassReport::is_conserved)
    }
}

/// The merged end-of-run serving record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeReport {
    /// Shard count the server ran with.
    pub shards: usize,
    /// Total worker threads.
    pub workers: usize,
    /// Backpressure policy name.
    pub policy: String,
    /// Routing mode name (`"hash"` or `"affinity"`).
    pub routing: String,
    /// Requests routed to their affinity home shard (0 under hash routing).
    pub affinity_hits: u64,
    /// Requests diverted to the least-loaded shard by the load-balance
    /// escape hatch (0 under hash routing).
    pub affinity_spills: u64,
    /// Requests offered to `submit` (accepted + rejected).
    pub offered: u64,
    /// Requests accepted into a queue.
    pub submitted: u64,
    /// Requests labeled to completion.
    pub completed: u64,
    /// Requests refused at admission (full queue under Reject, or closed).
    pub rejected: u64,
    /// Queued requests dropped by the ShedOldest policy.
    pub shed_oldest: u64,
    /// Dequeued requests dropped because their queue age reached the
    /// request timeout (or their SLO class deadline).
    pub shed_deadline: u64,
    /// Requests shed by SLO admission control before occupying a queue
    /// slot: the shard's predicted wait already exceeded their deadline.
    pub shed_admission: u64,
    /// Tickets cancelled by their clients before a worker claimed them
    /// (exactly one `Cancelled` completion event each; 0 on the
    /// fire-and-forget path, which issues no tickets).
    pub cancelled: u64,
    /// Requests answered from the label cache before admission (exact
    /// content-hash hits; zero queue wait, zero virtual-GPU bill).
    pub cache_hit: u64,
    /// Requests coalesced onto an identical in-flight request and
    /// completed by its fan-out when the leader resolved.
    pub coalesced: u64,
    /// Batched invocation rounds the workers executed (rounds whose every
    /// member was deadline-shed don't count — no work ran).
    pub batches: u64,
    /// Largest executed (post-shedding) batch observed.
    pub max_batch_observed: usize,
    /// Batched model invocations: one per `(model, batch)` group admitted
    /// to the virtual GPU pool. `stats.total_executions /
    /// model_invocations` is the mean coalescing depth — the quantity
    /// affinity routing exists to raise.
    pub model_invocations: u64,
    /// Virtual GPU **bill**: the summed batched invocation times
    /// (`Σ batch_time(model, count)`), i.e. GPU-time consumed, independent
    /// of how invocations packed into the pool. Coalescing shrinks it by
    /// deduplicating setup charges; compare with
    /// [`StreamStats::total_exec_ms`], the unbatched serial bill.
    pub virtual_work_ms: u64,
    /// Sum of the batches' virtual execution *makespans*, ms — the virtual
    /// wall-clock the GPU pool was busy. Batching and pool parallelism
    /// compress this below the serial sum of the same items' execution
    /// times ([`StreamStats::total_exec_ms`]).
    pub virtual_exec_ms: u64,
    /// Wall-clock time requests spent queued.
    pub queue_wait: LatencySummary,
    /// Wall-clock time requests spent in a worker (label + batched wait).
    pub execute: LatencySummary,
    /// Queue wait + execute, per request.
    pub total: LatencySummary,
    /// Merged labeling statistics over completed requests — field-for-field
    /// what a serial [`ams_core::streaming::StreamProcessor`] produces over
    /// the same items when nothing is shed.
    pub stats: StreamStats,
    /// Adaptive-batching trajectories (when the controller ran).
    pub adaptive: Option<AdaptiveReport>,
    /// Per-class SLO ledgers (when SLO classes were configured).
    pub slo: Option<SloReport>,
    /// Label-cache telemetry (when the cache ran).
    pub cache: Option<CacheReport>,
    /// Final observability fold (when [`ServeConfig::obs`] ran): the
    /// closing metrics snapshot plus the flight recorder's retained
    /// traces.
    pub obs: Option<ObsReport>,
    /// Online-adaptation record (when [`ServeConfig::adapt`] ran): final
    /// generation, swap/step/transition counts, and the loss trajectory.
    pub adapt: Option<AdaptReport>,
}

impl ServeReport {
    /// Shed + rejected share of offered load (0 when nothing was offered).
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        (self.rejected + self.shed_oldest + self.shed_deadline + self.shed_admission) as f64
            / self.offered as f64
    }

    /// Every offered request is accounted for exactly once: labeled, lost
    /// on one of the four shed/reject paths, cancelled by its client,
    /// answered from the cache, or completed by a coalescing fan-out.
    /// This is also the exactly-once completion invariant seen from the
    /// ledger side — each bucket except `rejected` delivers exactly one
    /// terminal event per request when a ticket was issued.
    pub fn is_conserved(&self) -> bool {
        self.offered
            == self.completed
                + self.rejected
                + self.shed_oldest
                + self.shed_deadline
                + self.shed_admission
                + self.cancelled
                + self.cache_hit
                + self.coalesced
    }

    /// Share of offered requests answered without a fresh execution —
    /// exact cache hits plus coalesced followers (0 when nothing was
    /// offered). The cache's capacity-multiplier headline number.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        (self.cache_hit + self.coalesced) as f64 / self.offered as f64
    }

    /// Mean executed requests per batched round (0 when no batch ran).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.completed as f64 / self.batches as f64
    }

    /// Mean model executions coalesced per batched invocation (0 when no
    /// invocation ran): how many same-model items shared one setup charge
    /// on the virtual GPU. Routing that groups similar requests raises
    /// this; 1.0 means batching bought nothing.
    pub fn mean_coalesced(&self) -> f64 {
        if self.model_invocations == 0 {
            return 0.0;
        }
        self.stats.total_executions as f64 / self.model_invocations as f64
    }

    /// Share of the serial virtual GPU bill that batched admission saved,
    /// measured in GPU-time consumed (`1 - virtual_work_ms /
    /// stats.total_exec_ms`; 0 when nothing executed). Pool packing does
    /// not move this number — only coalescing does, so it is the metric
    /// routing quality shows up in.
    pub fn bill_saving_fraction(&self) -> f64 {
        if self.stats.total_exec_ms == 0 {
            return 0.0;
        }
        1.0 - self.virtual_work_ms as f64 / self.stats.total_exec_ms as f64
    }

    /// The lifecycle event stream agrees with the conservation ledger
    /// bucket for bucket: each terminal kind's reconciled total (events
    /// drained + events drop-counted at the rings) equals the matching
    /// `ServeReport` counter, and `spilled` matches the router's spill
    /// count. Vacuously true when observability was off. This is the
    /// cross-check that makes the event stream trustworthy — drops are
    /// counted, never silently lost.
    pub fn events_reconcile(&self) -> bool {
        let Some(obs) = &self.obs else { return true };
        obs.total(EventKind::Admitted) == self.offered
            && obs.total(EventKind::Labeled) == self.completed
            && obs.total(EventKind::CacheHit) == self.cache_hit
            && obs.total(EventKind::Coalesced) == self.coalesced
            && obs.total(EventKind::ShedOverflow) == self.shed_oldest
            && obs.total(EventKind::ShedDeadline) == self.shed_deadline
            && obs.total(EventKind::ShedAdmission) == self.shed_admission
            && obs.total(EventKind::Rejected) == self.rejected
            && obs.total(EventKind::Cancelled) == self.cancelled
            && obs.total(EventKind::Spilled) == self.affinity_spills
            && obs.total(EventKind::WeightsSwapped) == self.adapt.as_ref().map_or(0, |a| a.swaps)
    }

    /// Share of routed requests that landed on their affinity home shard
    /// (0 when the affinity router never ran — e.g. hash routing).
    pub fn affinity_hit_rate(&self) -> f64 {
        let routed = self.affinity_hits + self.affinity_spills;
        if routed == 0 {
            return 0.0;
        }
        self.affinity_hits as f64 / routed as f64
    }
}

/// One shard's adaptive-batching state: the live limit workers read before
/// every pop, the observation window the controller adjusts from, and the
/// shard's published headroom signal.
struct ShardControl {
    limit: AtomicUsize,
    /// Amortized per-request service time, µs (EWMA over executed
    /// batches: execute span ÷ batch size). Published by the workers
    /// after every batch whether or not the adaptive controller runs —
    /// this is the headroom signal SLO admission control prices queue
    /// depth with (predicted wait = depth × amortized ÷ workers). 0 until
    /// the shard executes its first batch (admission control admits
    /// everything until then — no evidence, no shedding).
    amortized_us: AtomicU64,
    /// EWMA of the whole batch execute span, µs — what one more batch
    /// costs end to end. Admission control adds it to the predicted wait
    /// when pricing a *full* queue, where admitting means evicting.
    exec_span_us: AtomicU64,
    window: Mutex<AdaptiveWindow>,
}

/// The controller's per-window observations and its published trajectory.
#[derive(Default)]
struct AdaptiveWindow {
    execute: LatencyHistogram,
    total: LatencyHistogram,
    adjustments: u64,
    last_window_p99_us: u64,
    last_within_target: bool,
    trajectory: Vec<usize>,
}

impl ShardControl {
    fn new(start_limit: usize) -> Self {
        Self {
            limit: AtomicUsize::new(start_limit),
            amortized_us: AtomicU64::new(0),
            exec_span_us: AtomicU64::new(0),
            window: Mutex::new(AdaptiveWindow {
                last_within_target: true,
                ..AdaptiveWindow::default()
            }),
        }
    }

    /// Fold one executed batch's amortized per-request time into the
    /// published EWMA (¾ old + ¼ new — smooth enough that one outlier
    /// batch doesn't whipsaw admission, fresh enough to track load
    /// shifts). Racy read-modify-write is fine: any interleaving stores a
    /// plausible smoothed value.
    fn publish_amortized(&self, exec: Duration, batch_len: usize) -> u64 {
        let span = exec.as_micros().min(u128::from(u64::MAX)) as u64;
        let obs = span / batch_len.max(1) as u64;
        let old = self.amortized_us.load(Ordering::Relaxed);
        let next = (if old == 0 { obs } else { (old * 3 + obs) / 4 }).max(1);
        self.amortized_us.store(next, Ordering::Relaxed);
        let old_span = self.exec_span_us.load(Ordering::Relaxed);
        let next_span = if old_span == 0 {
            span
        } else {
            (old_span * 3 + span) / 4
        };
        self.exec_span_us.store(next_span.max(1), Ordering::Relaxed);
        next
    }

    /// Record one executed batch's member latencies and retune the limit
    /// once the window fills. One lock per batch, not per request.
    fn observe_batch(
        &self,
        waits: impl Iterator<Item = Duration>,
        exec: Duration,
        acfg: &AdaptiveBatchConfig,
        batch_model: &BatchLatencyModel,
    ) {
        let mut win = self.window.lock().expect("adaptive window");
        for wait in waits {
            win.execute.record(exec);
            win.total.record(wait + exec);
        }
        if win.total.count() < acfg.window {
            return;
        }
        let p99_total = win.total.quantile_us(0.99);
        let p99_exec = win.execute.quantile_us(0.99);
        let target_us = acfg.target_p99_ms.saturating_mul(1000);
        let cur = self.limit.load(Ordering::Relaxed);
        let next = if p99_total > target_us {
            // Violation: multiplicative decrease.
            ((cur as f64 * acfg.decrease_factor) as usize).max(acfg.min_batch)
        } else {
            // Compliant: additive increase, but bounded by the latency
            // model — grow only when the predicted tail still fits.
            let cand = (cur + acfg.increase_step).min(acfg.max_batch.max(acfg.min_batch));
            let ratio = batch_model.growth_ratio(cur, cand);
            let queue_share = p99_total.saturating_sub(p99_exec) as f64;
            let predicted = queue_share + p99_exec as f64 * ratio;
            if predicted <= target_us as f64 {
                cand
            } else {
                cur
            }
        };
        self.limit.store(next, Ordering::Relaxed);
        win.adjustments += 1;
        win.last_window_p99_us = p99_total;
        win.last_within_target = p99_total <= target_us;
        win.trajectory.push(next);
        win.execute = LatencyHistogram::default();
        win.total = LatencyHistogram::default();
    }

    /// Close out the controller at drain: judge a half-full residual window
    /// (enough evidence), discard a thinner one. Takes `&self` (the
    /// workers are joined, but client handles may still hold weak
    /// references to the shared state, so the record is read under the
    /// lock rather than by consuming the control).
    fn record(&self, shard: usize, acfg: &AdaptiveBatchConfig) -> ShardAdaptive {
        let final_max_batch = self.limit.load(Ordering::Relaxed);
        let win = self.window.lock().expect("adaptive window");
        let (mut last_p99, mut within) = (win.last_window_p99_us, win.last_within_target);
        if win.total.count() * 2 >= acfg.window.max(1) {
            let p99 = win.total.quantile_us(0.99);
            last_p99 = p99;
            within = p99 <= acfg.target_p99_ms.saturating_mul(1000);
        }
        ShardAdaptive {
            shard,
            final_max_batch,
            adjustments: win.adjustments,
            last_window_p99_us: last_p99,
            within_target: within,
            trajectory: win.trajectory.clone(),
        }
    }
}

/// Per-class counters recorded on the submit path (offered, rejected,
/// admission-shed) — one short-lived lock per submission.
#[derive(Debug, Default, Clone)]
struct ClassAdmission {
    offered: u64,
    value_offered: f64,
    rejected: u64,
    value_rejected: f64,
    shed_admission: u64,
    value_shed_admission: f64,
}

/// Shared server state (queues + router + scheduler), behind one `Arc`.
struct Shared {
    queues: Vec<ShardQueue>,
    router: Router,
    controls: Vec<ShardControl>,
    scheduler: AdaptiveModelScheduler,
    budget: Budget,
    cfg: ServeConfig,
    offered: AtomicU64,
    submitted: AtomicU64,
    rejected: AtomicU64,
    shed_admission: AtomicU64,
    /// Monotone ticket ids, unique across every client of this server.
    next_ticket: AtomicU64,
    /// The cancellation ledger live tickets record into (shared with the
    /// ticket slots by `Arc`, so a cancellation from any thread — even
    /// after the server wound down — lands in one place).
    cancel_ledger: Arc<CancelLedger>,
    /// Per-shard, per-class submit-path ledgers (present when SLO classes
    /// are configured; outer index = shard). Shard-local so producers
    /// contend at the same granularity as the shard queues themselves —
    /// one global ledger lock would serialize every submitter.
    class_admission: Option<Vec<Mutex<Vec<ClassAdmission>>>>,
    /// The content-addressed label cache (present when
    /// [`ServeConfig::cache`] is configured).
    cache: Option<Arc<LabelCache>>,
    /// The live observability pipeline (present when [`ServeConfig::obs`]
    /// is configured) — shared with the queues, the cache, and every
    /// ticket slot so each layer can stamp its own lifecycle events.
    obs: Option<Arc<ServerObs>>,
    /// The adaptation state shared with the trainer thread (present when
    /// [`ServeConfig::adapt`] is configured) — read here only for the
    /// live `adapt_generation` gauge; workers carry their own taps.
    adapt: Option<Arc<AdaptShared>>,
}

/// Per-class worker-side accumulators (completions, deadline sheds,
/// value accounting, the class latency histogram).
#[derive(Default)]
struct ClassLocal {
    completed: u64,
    deadline_met: u64,
    value_completed: f64,
    value_late: f64,
    shed_deadline: u64,
    value_shed_deadline: f64,
    total: LatencyHistogram,
}

/// Per-worker accumulators, merged at shutdown.
struct WorkerLocal {
    stats: StreamStats,
    queue_wait: LatencyHistogram,
    execute: LatencyHistogram,
    total: LatencyHistogram,
    completed: u64,
    shed_deadline: u64,
    batches: u64,
    max_batch_observed: usize,
    model_invocations: u64,
    virtual_work_ms: u64,
    virtual_exec_ms: u64,
    /// Per-class ledgers (empty when no SLO classes are configured).
    classes: Vec<ClassLocal>,
}

impl WorkerLocal {
    fn new(num_models: usize, num_classes: usize) -> Self {
        Self {
            stats: StreamStats::with_models(num_models),
            queue_wait: LatencyHistogram::default(),
            execute: LatencyHistogram::default(),
            total: LatencyHistogram::default(),
            completed: 0,
            shed_deadline: 0,
            batches: 0,
            max_batch_observed: 0,
            model_invocations: 0,
            virtual_work_ms: 0,
            virtual_exec_ms: 0,
            classes: (0..num_classes).map(|_| ClassLocal::default()).collect(),
        }
    }
}

/// The sharded serving front-end.
///
/// ```
/// use ams_core::framework::{AdaptiveModelScheduler, Budget};
/// use ams_core::predictor::OraclePredictor;
/// use ams_data::{Dataset, DatasetProfile, TruthTable};
/// use ams_models::ModelZoo;
/// use ams_serve::{AmsServer, ServeConfig};
/// use std::sync::Arc;
///
/// let zoo = ModelZoo::standard();
/// let ds = Dataset::generate(DatasetProfile::Coco2017, 8, 42);
/// let truth = TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5);
/// let predictor = Box::new(OraclePredictor::new(zoo.len(), 0.5));
/// let scheduler = AdaptiveModelScheduler::new(zoo, predictor, 0.5, 42);
///
/// let server = AmsServer::start(scheduler, Budget::Deadline { ms: 1000 }, ServeConfig::default());
/// for item in truth.items() {
///     server.submit(Arc::new(item.clone()));
/// }
/// let report = server.shutdown();
/// assert_eq!(report.completed, 8);
/// assert!(report.is_conserved());
/// ```
pub struct AmsServer {
    /// `Some` until `shutdown` consumes the server; `None` afterwards so
    /// the `Drop` impl knows a graceful drain already happened.
    inner: Option<ServerInner>,
}

/// The live server: shared state plus the joinable worker handles.
struct ServerInner {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<WorkerLocal>>,
    /// The observability aggregator thread (present when
    /// [`ServeConfig::obs`] is configured); joined at shutdown/abort.
    aggregator: Option<JoinHandle<()>>,
    /// The adaptation runtime (present when [`ServeConfig::adapt`] is
    /// configured): holds the trainer thread, joined after the workers so
    /// channel disconnect is its natural stop signal.
    adapt: Option<AdaptRuntime>,
}

/// Every shard's live AIMD batch limit — the trajectory sample the
/// aggregator stamps onto each metrics time slice.
fn shard_batch_limits(shared: &Shared) -> Vec<u64> {
    shared
        .controls
        .iter()
        .map(|c| c.limit.load(Ordering::Relaxed) as u64)
        .collect()
}

/// One racy-but-consistent gauge sample per shard: the queue depth and
/// published drain hint — the very inputs [`ShardQueue::estimated_wait_us`]
/// prices admission and spill routing with — plus the live batch limit.
fn obs_shard_samples(shared: &Shared) -> Vec<ShardSample> {
    shared
        .queues
        .iter()
        .zip(&shared.controls)
        .map(|(q, c)| ShardSample {
            depth: q.live_len() as u64,
            service_hint_us: q.service_hint_us(),
            estimated_wait_us: q.estimated_wait_us(),
            batch_limit: c.limit.load(Ordering::Relaxed) as u64,
        })
        .collect()
}

/// Cache occupancy gauges for a snapshot (`None` when the cache is off).
fn obs_cache_gauges(shared: &Shared) -> Option<CacheGauges> {
    shared.cache.as_ref().map(|c| {
        let r = c.report();
        let hits: u64 = c
            .ledger()
            .by_class()
            .iter()
            .map(|cc| cc.cache_hit + cc.coalesced)
            .sum();
        let offered = shared.offered.load(Ordering::Relaxed);
        CacheGauges {
            entries: r.entries,
            bytes: r.bytes,
            capacity_bytes: r.capacity_bytes,
            hit_rate: if offered == 0 {
                0.0
            } else {
                hits as f64 / offered as f64
            },
        }
    })
}

impl AmsServer {
    /// Spin up the shard queues, the router, and the worker threads.
    pub fn start(scheduler: AdaptiveModelScheduler, budget: Budget, cfg: ServeConfig) -> Self {
        let cfg = ServeConfig {
            shards: cfg.shards.max(1),
            workers_per_shard: cfg.workers_per_shard.max(1),
            queue_capacity: cfg.queue_capacity.max(1),
            max_batch: cfg.max_batch.max(1),
            adaptive: cfg.adaptive.map(|a| AdaptiveBatchConfig {
                min_batch: a.min_batch.max(1),
                max_batch: a.max_batch.max(a.min_batch.max(1)),
                window: a.window.max(1),
                increase_step: a.increase_step.max(1),
                decrease_factor: a.decrease_factor.clamp(0.1, 0.99),
                ..a
            }),
            slo: cfg.slo.map(|mut s| {
                if s.classes.is_empty() {
                    s.classes = SloConfig::default().classes;
                }
                for c in &mut s.classes {
                    c.weight = c.weight.max(0.0);
                }
                s
            }),
            ..cfg
        };
        let (value_weighted, edf) = cfg.slo.as_ref().map_or((false, false), |s| {
            (s.value_weighted_shedding, s.edf_dequeue)
        });
        // Per-class admission reservations: each class's configured
        // fraction of every shard queue's slots, floored to whole slots
        // (the queue clamps the sum to its capacity, earlier classes
        // first). All-zero reservations are dropped entirely — the
        // classless admission path stays untouched.
        let reservations: Vec<usize> = cfg.slo.as_ref().map_or(Vec::new(), |s| {
            let slots: Vec<usize> = s
                .classes
                .iter()
                .map(|c| (c.reserve.clamp(0.0, 1.0) * cfg.queue_capacity as f64).floor() as usize)
                .collect();
            if slots.iter().all(|&r| r == 0) {
                Vec::new()
            } else {
                slots
            }
        });
        let obs = cfg
            .obs
            .clone()
            .map(|o| Arc::new(ServerObs::new(o, cfg.shards, cfg.workers_per_shard)));
        let queues: Vec<ShardQueue> = (0..cfg.shards)
            .map(|shard| {
                let mut q =
                    ShardQueue::with_slo(cfg.queue_capacity, cfg.policy, value_weighted, edf)
                        .with_reservations(reservations.clone());
                if let Some(o) = &obs {
                    q = q.with_obs(shard as u32, Arc::clone(o));
                }
                q
            })
            .collect();
        // The controller starts every shard at the configured static limit,
        // clamped into the adaptive band.
        let start_limit = cfg.adaptive.map_or(cfg.max_batch, |a| {
            cfg.max_batch
                .clamp(a.min_batch, a.max_batch.max(a.min_batch))
        });
        let controls = (0..cfg.shards)
            .map(|_| ShardControl::new(start_limit))
            .collect();
        let class_admission = cfg.slo.as_ref().map(|s| {
            (0..cfg.shards)
                .map(|_| Mutex::new(vec![ClassAdmission::default(); s.classes.len()]))
                .collect()
        });
        // Without SLO classes nothing consumes `Route::value`, so hash
        // routing skips the per-submission value scan.
        let mut router = Router::new(cfg.routing, cfg.shards);
        if cfg.slo.is_none() {
            router = router.without_hash_value_scan();
        }
        // Boot the adaptation runtime (cell at generation 0 + trainer
        // thread) before the workers so every worker's tap can pin the
        // boot snapshot on its first batch.
        let adapt = cfg
            .adapt
            .as_ref()
            .map(|a| AdaptRuntime::start(a, obs.clone()));
        let cfg_cache = cfg.cache;
        let shared = Arc::new(Shared {
            router,
            queues,
            controls,
            scheduler,
            budget,
            cfg,
            offered: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            shed_admission: AtomicU64::new(0),
            next_ticket: AtomicU64::new(0),
            cancel_ledger: Arc::new(CancelLedger::default()),
            class_admission,
            cache: cfg_cache.map(|c| LabelCache::new_with_obs(c, obs.clone())),
            obs,
            adapt: adapt.as_ref().map(|r| Arc::clone(&r.shared)),
        });
        let workers = (0..shared.cfg.shards * shared.cfg.workers_per_shard)
            .map(|w| {
                let shared = Arc::clone(&shared);
                let shard = w / shared.cfg.workers_per_shard;
                // Each worker owns its tap (sender clone + snapshot pin);
                // when the workers join, the tap clones drop and the
                // trainer's channel disconnects.
                let tap = adapt.as_ref().map(|r| WorkerAdapt::new(r.tap()));
                std::thread::spawn(move || worker_loop(&shared, shard, w, tap))
            })
            .collect();
        // The aggregator: a background thread that periodically drains the
        // event rings into the metrics registry. Workers never block on
        // observability — they only push into their rings (dropping, with
        // a count, when full); all folding happens here.
        let aggregator = shared.obs.as_ref().map(|o| {
            let obs = Arc::clone(o);
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let interval = Duration::from_millis(obs.drain_interval_ms());
                while !obs.stopped() {
                    // Sleep in short steps so a long drain interval never
                    // holds shutdown hostage — stop is re-checked every
                    // few milliseconds.
                    let mut slept = Duration::ZERO;
                    while slept < interval && !obs.stopped() {
                        let step = (interval - slept).min(Duration::from_millis(5));
                        std::thread::sleep(step);
                        slept += step;
                    }
                    if obs.stopped() {
                        break;
                    }
                    obs.drain(&shard_batch_limits(&shared));
                }
            })
        });
        Self {
            inner: Some(ServerInner {
                shared,
                workers,
                aggregator,
                adapt,
            }),
        }
    }

    fn shared(&self) -> &Arc<Shared> {
        &self
            .inner
            .as_ref()
            .expect("server alive until shutdown")
            .shared
    }

    /// Open a request/response [`Client`] with the default completion
    /// window (1024 outstanding tickets). Any number of clients may run
    /// concurrently; each gets its own completion queue, and completion
    /// events route to the client that issued the ticket.
    pub fn client(&self) -> Client {
        self.client_with_capacity(Client::DEFAULT_CAPACITY)
    }

    /// [`AmsServer::client`] with an explicit completion-window capacity:
    /// at most `capacity` tickets may be outstanding (issued but their
    /// completion events not yet consumed); `submit` blocks past that
    /// until the client drains. Size it at least as large as the deepest
    /// submit burst between drains (see `PERF.md`, "Completion-queue
    /// sizing").
    pub fn client_with_capacity(&self, capacity: usize) -> Client {
        Client {
            shared: Arc::downgrade(self.shared()),
            queue: Arc::new(CompletionQueue::new(capacity)),
            cancel_ledger: Arc::clone(&self.shared().cancel_ledger),
        }
    }

    /// The shard an item routes to ([`fib_shard`] of the scene id — the
    /// hash mode's home shard, shared with the router so the constants
    /// cannot drift). Under affinity routing the live router may divert a
    /// submission elsewhere; this accessor stays the stable hash-partition
    /// answer.
    pub fn shard_of(&self, item: &ItemTruth) -> usize {
        fib_shard(item.scene_id, self.shared().cfg.shards)
    }

    /// Submit one item for labeling under the shard's backpressure policy
    /// (SLO class 0 when classes are configured). Under
    /// [`BackpressurePolicy::Block`] this call waits for queue space.
    ///
    /// This is the fire-and-forget path: no ticket is issued and the
    /// labels are only visible in the aggregate [`ServeReport`]. For
    /// per-request results and cancellation, open a [`Client`] via
    /// [`AmsServer::client`].
    pub fn submit(&self, item: Arc<ItemTruth>) -> SubmitOutcome {
        self.submit_class(item, 0)
    }

    /// [`AmsServer::submit`] with an explicit SLO class (clamped to the
    /// configured classes; ignored when no SLO is configured).
    ///
    /// With admission control on, the call first prices the shard's
    /// backlog: predicted wait = queue depth × the amortized per-request
    /// batch time the shard's workers publish ÷ workers on the shard. A
    /// request whose prediction already exceeds its class deadline is
    /// refused here ([`SubmitOutcome::ShedAdmission`]) *before* it
    /// occupies a queue slot — admitting it could only evict or delay
    /// work that still has a chance, then be deadline-shed anyway.
    pub fn submit_class(&self, item: Arc<ItemTruth>, class: usize) -> SubmitOutcome {
        self.submit_with(item, SubmitOptions::class(class))
    }

    /// [`AmsServer::submit_class`] with full per-ticket economics: an
    /// optional deadline and value that override the class defaults for
    /// this submission only (see [`SubmitOptions`]).
    pub fn submit_with(&self, item: Arc<ItemTruth>, opts: SubmitOptions) -> SubmitOutcome {
        submit_inner(self.shared(), item, opts, None).map(|_| ())
    }

    /// Requests currently queued across all shards (racy snapshot).
    pub fn pending(&self) -> usize {
        self.shared().queues.iter().map(ShardQueue::len).sum()
    }

    /// A live metrics snapshot *while the server is running*: event
    /// totals, in-flight and outstanding-ticket gauges, per-shard queue
    /// depth / wait estimate / busy fraction / batch-limit trajectory,
    /// per-class admission and deadline rates, cache occupancy, and the
    /// rolling latency histogram — all without stopping a single worker
    /// (the rings are drained opportunistically first so the numbers are
    /// current). `None` when [`ServeConfig::obs`] is off.
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        let shared = self.shared();
        shared.obs.as_ref().map(|o| {
            o.snapshot(
                &obs_shard_samples(shared),
                obs_cache_gauges(shared),
                shared.adapt.as_ref().map(|a| a.generation()),
            )
        })
    }

    /// Prometheus-style text exposition of [`AmsServer::metrics_snapshot`]
    /// (`# HELP`/`# TYPE` families). A single comment line when
    /// observability is off, so scrapers always get well-formed text.
    pub fn render_metrics(&self) -> String {
        self.metrics_snapshot().map_or_else(
            || "# ams observability disabled\n".to_string(),
            |s| s.render_prometheus(),
        )
    }

    /// Flight-recorder dump for one settled "interesting" request
    /// (deadline miss, any shed path, or a cancellation), by request or
    /// ticket id: the complete causal event trace the recorder retained.
    /// `None` when observability is off, the id never settled
    /// interestingly, or the bounded recorder already evicted it.
    pub fn why(&self, id: u64) -> Option<TraceReport> {
        let shared = self.shared();
        let obs = shared.obs.as_ref()?;
        // Drain first so a request that settled moments ago is visible.
        obs.drain(&shard_batch_limits(shared));
        obs.why(id)
    }

    /// Close admission, drain every queue through the workers, join them,
    /// and merge the per-worker shards into the final report.
    pub fn shutdown(mut self) -> ServeReport {
        self.inner
            .take()
            .expect("server alive until shutdown")
            .shutdown()
    }
}

impl Drop for AmsServer {
    /// Abort on drop (when [`AmsServer::shutdown`] was never called):
    /// close every queue *discarding* its backlog — each queued request's
    /// ticket resolves to `Shed(Drain)`, so clients still get their one
    /// terminal event — and join every worker. A dropped server leaves no
    /// detached threads behind; in-flight batches finish and deliver
    /// normally. Use `shutdown` for the graceful drain-everything exit.
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            inner.abort();
        }
    }
}

impl ServerInner {
    /// The abort path (`Drop` without `shutdown`): discard queued work,
    /// notify its tickets, join the workers, drop the report.
    fn abort(self) {
        for q in &self.shared.queues {
            for victim in q.abort() {
                // A discarded coalescing leader drains its followers too.
                victim.fail_cache(ShedReason::Drain);
                let owned = match victim.completion() {
                    Some(slot) => slot.try_shed(ShedReason::Drain),
                    None => true,
                };
                if owned {
                    if let Some(obs) = &self.shared.obs {
                        obs.emit(Event {
                            at_us: obs.now_us(),
                            req: victim.req_id,
                            ticket: victim.completion().map_or(NO_TICKET, |s| s.id()),
                            shard: NO_SHARD,
                            class: victim.class as u32,
                            kind: EventKind::ShedDrain,
                            detail: 0,
                            flag: false,
                        });
                    }
                }
            }
        }
        for handle in self.workers {
            // Don't double-panic while unwinding: a worker that died
            // already reported its panic.
            let _ = handle.join();
        }
        if let Some(adapt) = self.adapt {
            adapt.abort();
        }
        if let Some(obs) = &self.shared.obs {
            obs.request_stop();
        }
        if let Some(handle) = self.aggregator {
            let _ = handle.join();
        }
    }

    fn shutdown(self) -> ServeReport {
        for q in &self.shared.queues {
            q.close();
        }
        let num_models = self.shared.scheduler.zoo().len();
        let num_classes = self.shared.cfg.slo.as_ref().map_or(0, |s| s.classes.len());
        let mut merged = WorkerLocal::new(num_models, num_classes);
        for handle in self.workers {
            let local = handle.join().expect("serve worker panicked");
            merged.stats.merge(&local.stats);
            merged.queue_wait.merge(&local.queue_wait);
            merged.execute.merge(&local.execute);
            merged.total.merge(&local.total);
            merged.completed += local.completed;
            merged.shed_deadline += local.shed_deadline;
            merged.batches += local.batches;
            merged.max_batch_observed = merged.max_batch_observed.max(local.max_batch_observed);
            merged.model_invocations += local.model_invocations;
            merged.virtual_work_ms += local.virtual_work_ms;
            merged.virtual_exec_ms += local.virtual_exec_ms;
            for (into, from) in merged.classes.iter_mut().zip(&local.classes) {
                into.completed += from.completed;
                into.deadline_met += from.deadline_met;
                into.value_completed += from.value_completed;
                into.value_late += from.value_late;
                into.shed_deadline += from.shed_deadline;
                into.value_shed_deadline += from.value_shed_deadline;
                into.total.merge(&from.total);
            }
        }
        // Finish the trainer after the workers joined (their tap senders
        // are gone, so dropping the runtime's own sender disconnects the
        // channel and the trainer drains out) but *before* the
        // observability stop below: the trainer's tail swap events must
        // still land in the rings for the final drain to reconcile.
        let adapt_report = self.adapt.map(AdaptRuntime::finish);
        // Stop the observability aggregator only after the workers joined:
        // every worker-side event is in its ring by now, and the final
        // drain below (inside `report`) folds the stragglers in.
        if let Some(obs) = &self.shared.obs {
            obs.request_stop();
        }
        if let Some(handle) = self.aggregator {
            handle.join().expect("obs aggregator panicked");
        }
        let shed_oldest: u64 = self
            .shared
            .queues
            .iter()
            .map(ShardQueue::shed_oldest_count)
            .sum();
        // Per-class overflow-shed ledgers, merged across shards.
        let mut shed_classes: Vec<ClassShed> = vec![ClassShed::default(); num_classes];
        for q in &self.shared.queues {
            for (class, entry) in q.shed_ledger().into_iter().enumerate() {
                if class < shed_classes.len() {
                    shed_classes[class].count += entry.count;
                    shed_classes[class].value += entry.value;
                }
            }
        }
        // Clients hold only weak references, so the shared state is read
        // in place — a client submitting after this point sees closed
        // queues (`Rejected`), and cancellations of still-live tickets
        // keep landing in the shared cancel ledger (read below *after*
        // the workers joined, so every worker-side resolution is final).
        let shared = &self.shared;
        let adaptive = shared.cfg.adaptive.map(|acfg| AdaptiveReport {
            target_p99_ms: acfg.target_p99_ms,
            shards: shared
                .controls
                .iter()
                .enumerate()
                .map(|(shard, ctl)| ctl.record(shard, &acfg))
                .collect(),
        });
        let cancelled_classes = shared.cancel_ledger.by_class();
        let cancelled = shared.cancel_ledger.total();
        // The cache ledger: hits and coalesced followers get their own
        // buckets; followers shed with a failed leader fold into the
        // matching loss buckets (their loss path was real). Drain sheds
        // only happen on abort, where no report exists.
        let cache_classes: Vec<ClassCache> = shared
            .cache
            .as_ref()
            .map_or_else(Vec::new, |c| c.ledger().by_class());
        let cache_hit: u64 = cache_classes.iter().map(|c| c.cache_hit).sum();
        let coalesced: u64 = cache_classes.iter().map(|c| c.coalesced).sum();
        let follower_shed_admission: u64 = cache_classes.iter().map(|c| c.shed_admission).sum();
        let follower_shed_overflow: u64 = cache_classes.iter().map(|c| c.shed_overflow).sum();
        let follower_shed_deadline: u64 = cache_classes.iter().map(|c| c.shed_deadline).sum();
        // The final observability fold. `report` drains the rings one last
        // time, and the order matters: every ledger above was read first,
        // and every ledgered settlement pushed its event *before* its
        // ledger mutation became visible — so the drain can only see a
        // superset of the settlements the counters above counted, never
        // miss one (`events_reconcile` depends on this).
        let obs_report = shared.obs.as_ref().map(|o| {
            o.report(
                &obs_shard_samples(shared),
                obs_cache_gauges(shared),
                adapt_report.as_ref().map(|a| a.generation),
            )
        });
        let slo = shared.cfg.slo.as_ref().map(|slo_cfg| {
            // Fold the per-shard submit-path ledgers into one.
            let mut admission = vec![ClassAdmission::default(); slo_cfg.classes.len()];
            for shard_ledger in shared
                .class_admission
                .as_ref()
                .expect("ledger exists when SLO is configured")
            {
                for (into, from) in admission
                    .iter_mut()
                    .zip(shard_ledger.lock().expect("class ledger").iter())
                {
                    into.offered += from.offered;
                    into.value_offered += from.value_offered;
                    into.rejected += from.rejected;
                    into.value_rejected += from.value_rejected;
                    into.shed_admission += from.shed_admission;
                    into.value_shed_admission += from.value_shed_admission;
                }
            }
            SloReport {
                admission_control: slo_cfg.admission_control,
                value_weighted_shedding: slo_cfg.value_weighted_shedding,
                edf_dequeue: slo_cfg.edf_dequeue,
                classes: slo_cfg
                    .classes
                    .iter()
                    .enumerate()
                    .map(|(i, c)| {
                        let adm = &admission[i];
                        let local = &merged.classes[i];
                        let oldest = shed_classes[i];
                        let cancel = cancelled_classes.get(i).copied().unwrap_or_default();
                        let cached = cache_classes.get(i).copied().unwrap_or_default();
                        ClassReport {
                            class: i,
                            name: c.name.clone(),
                            deadline_ms: c.deadline_ms,
                            weight: c.weight,
                            offered: adm.offered + cached.offered,
                            completed: local.completed,
                            deadline_met: local.deadline_met,
                            rejected: adm.rejected,
                            shed_admission: adm.shed_admission + cached.shed_admission,
                            shed_oldest: oldest.count + cached.shed_overflow,
                            shed_deadline: local.shed_deadline + cached.shed_deadline,
                            cancelled: cancel.count,
                            cache_hit: cached.cache_hit,
                            coalesced: cached.coalesced,
                            value_cached: cached.value_cached,
                            value_cancelled: cancel.value,
                            value_offered: adm.value_offered + cached.value_offered,
                            value_completed: local.value_completed,
                            value_late: local.value_late,
                            value_shed: adm.value_rejected
                                + adm.value_shed_admission
                                + oldest.value
                                + local.value_shed_deadline
                                + cached.value_shed,
                            total: local.total.summary(),
                        }
                    })
                    .collect(),
            }
        });
        ServeReport {
            shards: shared.cfg.shards,
            workers: shared.cfg.shards * shared.cfg.workers_per_shard,
            policy: shared.cfg.policy.name().to_string(),
            routing: shared.router.mode().name().to_string(),
            affinity_hits: shared.router.affinity_hits(),
            affinity_spills: shared.router.affinity_spills(),
            offered: shared.offered.load(Ordering::Relaxed),
            submitted: shared.submitted.load(Ordering::Relaxed),
            completed: merged.completed,
            rejected: shared.rejected.load(Ordering::Relaxed),
            shed_oldest: shed_oldest + follower_shed_overflow,
            shed_deadline: merged.shed_deadline + follower_shed_deadline,
            shed_admission: shared.shed_admission.load(Ordering::Relaxed) + follower_shed_admission,
            cancelled,
            cache_hit,
            coalesced,
            batches: merged.batches,
            max_batch_observed: merged.max_batch_observed,
            model_invocations: merged.model_invocations,
            virtual_work_ms: merged.virtual_work_ms,
            virtual_exec_ms: merged.virtual_exec_ms,
            queue_wait: merged.queue_wait.summary(),
            execute: merged.execute.summary(),
            total: merged.total.summary(),
            stats: merged.stats,
            adaptive,
            slo,
            cache: shared.cache.as_ref().map(|c| c.report()),
            obs: obs_report,
            adapt: adapt_report,
        }
    }
}

/// A request/response handle onto an [`AmsServer`]: submissions issue
/// cancellable [`Ticket`]s, and every ticket's single terminal
/// [`Completion`] event arrives on this client's own bounded completion
/// queue.
///
/// ```
/// use ams_core::framework::{AdaptiveModelScheduler, Budget};
/// use ams_core::predictor::OraclePredictor;
/// use ams_data::{Dataset, DatasetProfile, TruthTable};
/// use ams_models::ModelZoo;
/// use ams_serve::{AmsServer, Completion, ServeConfig};
/// use std::sync::Arc;
///
/// let zoo = ModelZoo::standard();
/// let ds = Dataset::generate(DatasetProfile::Coco2017, 4, 42);
/// let truth = TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5);
/// let predictor = Box::new(OraclePredictor::new(zoo.len(), 0.5));
/// let scheduler = AdaptiveModelScheduler::new(zoo, predictor, 0.5, 42);
///
/// let server = AmsServer::start(scheduler, Budget::Deadline { ms: 1000 }, ServeConfig::default());
/// let client = server.client();
/// let tickets: Vec<_> = truth
///     .items()
///     .iter()
///     .filter_map(|item| client.submit(Arc::new(item.clone())).ticket())
///     .collect();
/// for _ in &tickets {
///     match client.recv().expect("one event per ticket") {
///         Completion::Labeled(result) => assert!(!result.labels.is_empty() || result.recall == 1.0),
///         other => panic!("lossless config never sheds: {other:?}"),
///     }
/// }
/// server.shutdown();
/// ```
///
/// The client holds only a weak reference to the server: submitting after
/// `shutdown` (or drop) returns [`SubmitOutcome::Rejected`], and
/// undelivered events remain receivable.
#[derive(Debug, Clone)]
pub struct Client {
    shared: Weak<Shared>,
    queue: Arc<CompletionQueue>,
    cancel_ledger: Arc<CancelLedger>,
}

impl Client {
    /// Default completion-window capacity of [`AmsServer::client`].
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// Submit one item, returning its [`Ticket`] inside the admission
    /// outcome (SLO class 0 when classes are configured).
    ///
    /// Blocks while the completion window is full — `capacity` tickets
    /// outstanding with their events unconsumed — and then under the
    /// shard's own backpressure policy, exactly like
    /// [`AmsServer::submit`].
    pub fn submit(&self, item: Arc<ItemTruth>) -> SubmitOutcome<Ticket> {
        self.submit_class(item, 0)
    }

    /// [`Client::submit`] with an explicit SLO class (clamped to the
    /// configured classes; ignored when no SLO is configured).
    pub fn submit_class(&self, item: Arc<ItemTruth>, class: usize) -> SubmitOutcome<Ticket> {
        self.submit_with(item, SubmitOptions::class(class))
    }

    /// [`Client::submit_class`] with full per-ticket economics: an
    /// optional deadline and value that override the class defaults for
    /// this ticket only (see [`SubmitOptions`]). Admission pricing, EDF
    /// dequeue, deadline shedding, and value-weighted eviction read the
    /// per-ticket numbers; the class remains the ledger bucket, so every
    /// conservation gate is unchanged.
    pub fn submit_with(&self, item: Arc<ItemTruth>, opts: SubmitOptions) -> SubmitOutcome<Ticket> {
        let Some(shared) = self.shared.upgrade() else {
            // The server shut down; nothing can be queued anymore.
            return SubmitOutcome::Rejected;
        };
        submit_inner(&shared, item, opts, Some(self))
            .map(|ticket| ticket.expect("ticketed submissions always issue a ticket"))
    }

    /// Blocking receive: the next terminal event, in delivery order.
    /// Returns `None` when no ticket is outstanding (every issued ticket's
    /// event was already consumed) — so a drain loop terminates instead of
    /// deadlocking.
    pub fn recv(&self) -> Option<Completion> {
        self.queue.recv()
    }

    /// Non-blocking receive: the next event if one is already queued.
    pub fn try_recv(&self) -> Option<Completion> {
        self.queue.try_recv()
    }

    /// Receive with a timeout: wait up to `timeout` for the next event,
    /// returning `None` on timeout. Unlike [`Client::recv`] this keeps
    /// waiting while nothing is outstanding — callers that outlive idle
    /// gaps between submission bursts (the TCP front-end's per-connection
    /// writer) distinguish "idle" from "done" themselves.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Completion> {
        self.queue.recv_timeout(timeout)
    }

    /// Drain every currently queued event without blocking (outstanding
    /// tickets whose events have not arrived yet stay outstanding).
    pub fn drain(&self) -> Vec<Completion> {
        self.queue.drain()
    }

    /// Tickets issued by this client whose terminal events have not been
    /// consumed yet.
    pub fn outstanding(&self) -> usize {
        self.queue.outstanding()
    }

    /// The completion-window capacity.
    pub fn capacity(&self) -> usize {
        self.queue.capacity()
    }
}

/// Per-ticket economics for [`Client::submit_with`] /
/// [`AmsServer::submit_with`]: the SLO class is the aggregation bucket
/// (ledgers, reports, reservations), while the optional deadline and
/// value override the class defaults for *this ticket only* — admission
/// pricing, EDF dequeue, deadline shedding, and value-weighted eviction
/// all read the per-ticket numbers.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SubmitOptions {
    /// SLO class (clamped to the configured classes; aggregation bucket
    /// only — ignored for scheduling when no SLO is configured).
    pub class: usize,
    /// Per-ticket deadline in microseconds. `None` falls back to the
    /// class deadline (or the server-wide request timeout without SLO
    /// classes). Honored even without SLO classes: the request expires
    /// and is deadline-shed once the budget is exhausted.
    pub deadline_us: Option<u64>,
    /// Per-ticket value in SLO value units. `None` falls back to the
    /// class weight × the predicted affinity value (or `1.0` without SLO
    /// classes). Feeds admission pricing, overflow eviction, cache
    /// eviction pricing, and the per-class value ledgers.
    pub value: Option<f64>,
}

impl SubmitOptions {
    /// Options for a plain submission into `class` (class defaults for
    /// deadline and value).
    pub fn class(class: usize) -> Self {
        Self {
            class,
            ..Self::default()
        }
    }

    /// Builder: set the per-ticket deadline in microseconds.
    #[must_use]
    pub fn deadline_us(mut self, deadline_us: u64) -> Self {
        self.deadline_us = Some(deadline_us);
        self
    }

    /// Builder: set the per-ticket value.
    #[must_use]
    pub fn value(mut self, value: f64) -> Self {
        self.value = Some(value);
        self
    }
}

/// The one submit path behind both [`AmsServer::submit_with`]
/// (fire-and-forget, `client: None`) and [`Client::submit_with`]
/// (ticketed). Returns the issued ticket in the outcome (`None` inside
/// the outcome on the fire-and-forget path).
fn submit_inner(
    shared: &Shared,
    item: Arc<ItemTruth>,
    opts: SubmitOptions,
    client: Option<&Client>,
) -> SubmitOutcome<Option<Ticket>> {
    // Resolve the class and its deadline *before* routing: the router's
    // deadline-aware spill prices candidate shards against the budget.
    let (class, weight, class_deadline_us) = match &shared.cfg.slo {
        Some(slo) => {
            let class = opts.class.min(slo.classes.len() - 1);
            let c = &slo.classes[class];
            (class, c.weight, Some(c.deadline_ms.saturating_mul(1000)))
        }
        None => (
            0,
            1.0,
            shared
                .cfg
                .request_timeout_ms
                .map(|t| t.saturating_mul(1000)),
        ),
    };
    // A per-ticket deadline replaces the class default; everything
    // downstream (router spill pricing, admission control, EDF, the
    // worker's staleness check) reads the resolved number.
    let deadline_us = opts.deadline_us.or(class_deadline_us);
    // Claim the completion-window slot first: it may block while the
    // client's window is full, and the queue snapshots the router takes
    // should be fresh when the push actually happens.
    if let Some(c) = client {
        c.queue.issue();
    }
    // One fingerprint per request (the top-k affinity-value scan used to
    // run twice — once for admission pricing, once inside `route`): the
    // router derives placement from it, admission and shedding price with
    // its value, and the cache keys on its content hash — computed only
    // when the cache is on, so the uncached path pays nothing extra.
    let fp = shared
        .router
        .fingerprint(&shared.scheduler, &item, shared.cache.is_some());
    // The prior `offered` count doubles as the request's observability
    // correlation id: unique per submission, ticketed or not.
    let req_id = shared.offered.fetch_add(1, Ordering::Relaxed);
    // A per-ticket value replaces the predicted one; either way the
    // class stays the ledger bucket, so conservation sums are untouched.
    let value = opts.value.unwrap_or(match &shared.cfg.slo {
        Some(_) => weight * fp.value,
        None => 1.0,
    });
    let ticket = client.map(|c| {
        let id = shared.next_ticket.fetch_add(1, Ordering::Relaxed);
        let mut slot = CompletionSlot::new(
            id,
            class,
            value,
            Arc::clone(&c.queue),
            Arc::clone(&c.cancel_ledger),
        );
        if let Some(obs) = &shared.obs {
            obs.ticket_issued();
            slot = slot.with_obs(req_id, Arc::clone(obs));
        }
        Ticket::new(Arc::new(slot))
    });
    if let Some(obs) = &shared.obs {
        obs.emit(Event {
            at_us: obs.now_us(),
            req: req_id,
            ticket: ticket.as_ref().map_or(NO_TICKET, |t| t.slot().id()),
            shard: NO_SHARD,
            class: class as u32,
            kind: EventKind::Admitted,
            detail: 0,
            flag: false,
        });
    }
    // Pre-admission cache protocol: an exact duplicate of a *resolved*
    // fingerprint is answered right here — cached labels, zero queue
    // wait, zero virtual-GPU bill, no queue slot; a duplicate of a
    // *queued or in-flight* fingerprint coalesces onto that leader and
    // completes at its fan-out. Only a first sighting (the leader)
    // proceeds to routing and admission, carrying the pending entry.
    let mut lead: Option<Arc<PendingEntry>> = None;
    if let Some(cache) = &shared.cache {
        let follower = Follower {
            slot: ticket.as_ref().map(|t| Arc::clone(t.slot())),
            class,
            value,
            deadline_us,
            submitted_at: Instant::now(),
            req_id,
        };
        match cache.lookup(fp.content, follower) {
            Lookup::Hit(result) => {
                cache.ledger().record_hit(class, value);
                if let Some(obs) = &shared.obs {
                    obs.emit(Event {
                        at_us: obs.now_us(),
                        req: req_id,
                        ticket: ticket.as_ref().map_or(NO_TICKET, |t| t.slot().id()),
                        shard: NO_SHARD,
                        class: class as u32,
                        kind: EventKind::CacheHit,
                        detail: 0,
                        flag: false,
                    });
                }
                if let Some(t) = &ticket {
                    let slot = t.slot();
                    slot.try_labeled(LabelResult {
                        ticket: slot.id(),
                        class,
                        labels: result.labels,
                        executed: result.executed,
                        label_value: result.label_value,
                        banked_value: value,
                        recall: result.recall,
                        queue_wait_us: 0,
                        execute_us: 0,
                        deadline_met: true,
                    });
                }
                return SubmitOutcome::Cached(ticket);
            }
            Lookup::Coalesced => return SubmitOutcome::Coalesced(ticket),
            Lookup::Miss(entry) => lead = Some(entry),
        }
    }
    let route = shared.router.route(&fp, &item, &shared.queues, deadline_us);
    if !route.affine {
        // Exactly the routes the router counted as `affinity_spills`
        // (hash routes are always "affine"), so the spill events
        // reconcile against the router's own counter.
        if let Some(obs) = &shared.obs {
            obs.emit(Event {
                at_us: obs.now_us(),
                req: req_id,
                ticket: ticket.as_ref().map_or(NO_TICKET, |t| t.slot().id()),
                shard: route.shard as u32,
                class: class as u32,
                kind: EventKind::Spilled,
                detail: 0,
                flag: false,
            });
        }
    }
    if let Some(ledgers) = &shared.class_admission {
        let mut l = ledgers[route.shard].lock().expect("class ledger");
        l[class].offered += 1;
        l[class].value_offered += value;
    }
    if let (Some(slo), Some(deadline)) = (&shared.cfg.slo, deadline_us) {
        if slo.admission_control {
            let amortized = shared.controls[route.shard]
                .amortized_us
                .load(Ordering::Relaxed);
            // One consistent snapshot of the queue (single lock
            // acquisition): total depth for the fullness check, and
            // the earlier-deadline backlog for EDF pricing — under
            // EDF dequeue an urgent request overtakes lax work, so
            // the raw depth would overcharge it (and shed requests
            // EDF would have served in time).
            let at = Instant::now() + Duration::from_micros(deadline);
            let (qlen, ahead) = shared.queues[route.shard].queued_ahead(at);
            let depth = if slo.edf_dequeue { ahead } else { qlen } as u64;
            // Two shedding criteria, deliberately asymmetric:
            //
            // * the predicted *wait alone* exceeds the deadline — the
            //   request provably cannot complete in time (it cannot
            //   even dequeue in budget), so queueing it only wastes a
            //   slot;
            // * the queue is *full* and wait + one batch execute span
            //   (the measured EWMA) exceeds the deadline — here
            //   admitting means evicting a queued request that still
            //   has a chance, in favor of one predicted to finish
            //   late; refusing the doomed newcomer is the strictly
            //   better trade.
            //
            // A merely-probably-late request on a non-full queue is
            // admitted: EDF dequeue may still save it, and shedding
            // at the margin would throw away value on a coin flip.
            let wait_us = depth as f64 * amortized as f64 / shared.cfg.workers_per_shard as f64;
            let full = qlen >= shared.queues[route.shard].capacity();
            let span = shared.controls[route.shard]
                .exec_span_us
                .load(Ordering::Relaxed);
            let doomed =
                wait_us >= deadline as f64 || (full && wait_us + span as f64 >= deadline as f64);
            if amortized > 0 && doomed {
                shared.shed_admission.fetch_add(1, Ordering::Relaxed);
                // No cancel race to lose: the ticket has not been returned
                // to the caller yet, so this shed always owns the slot —
                // the event mirrors the unconditional counter above.
                if let Some(obs) = &shared.obs {
                    obs.emit(Event {
                        at_us: obs.now_us(),
                        req: req_id,
                        ticket: ticket.as_ref().map_or(NO_TICKET, |t| t.slot().id()),
                        shard: route.shard as u32,
                        class: class as u32,
                        kind: EventKind::ShedAdmission,
                        detail: wait_us as u64,
                        flag: false,
                    });
                }
                if let Some(ledgers) = &shared.class_admission {
                    let mut l = ledgers[route.shard].lock().expect("class ledger");
                    l[class].shed_admission += 1;
                    l[class].value_shed_admission += value;
                }
                // The ticket resolves right here: the shed *is* its
                // terminal event, delivered at decision time. A shed
                // leader takes its pending cache entry down with it —
                // no worker will ever resolve it, so followers that
                // coalesced between lookup and here shed too.
                if let Some(entry) = &lead {
                    entry.fail(ShedReason::Admission);
                }
                if let Some(t) = &ticket {
                    t.slot().try_shed(ShedReason::Admission);
                }
                return SubmitOutcome::ShedAdmission(ticket);
            }
        }
    }
    let mut req = Request::new(item, route.signature)
        .with_slo(class, value, deadline_us)
        .with_req_id(req_id);
    if let Some(t) = &ticket {
        req = req.with_completion(Arc::clone(t.slot()));
    }
    if let Some(entry) = &lead {
        req = req.with_cache(Arc::clone(entry));
    }
    let outcome = shared.queues[route.shard].push(req);
    match outcome {
        SubmitOutcome::Enqueued(()) | SubmitOutcome::EnqueuedShedOldest(()) => {
            shared.submitted.fetch_add(1, Ordering::Relaxed);
            if let Some(obs) = &shared.obs {
                obs.emit(Event {
                    at_us: obs.now_us(),
                    req: req_id,
                    ticket: ticket.as_ref().map_or(NO_TICKET, |t| t.slot().id()),
                    shard: route.shard as u32,
                    class: class as u32,
                    kind: EventKind::Enqueued,
                    detail: 0,
                    flag: false,
                });
            }
        }
        // The submission itself was the overflow shed: it never
        // entered a queue (so it is not `submitted`) and the queue
        // recorded it in the overflow-shed ledger — and resolved its
        // ticket with `Shed(Overflow)` — which keeps the conservation
        // equation balanced.
        SubmitOutcome::ShedIncoming(()) => {}
        SubmitOutcome::Rejected => {
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            if let Some(obs) = &shared.obs {
                obs.emit(Event {
                    at_us: obs.now_us(),
                    req: req_id,
                    ticket: ticket.as_ref().map_or(NO_TICKET, |t| t.slot().id()),
                    shard: route.shard as u32,
                    class: class as u32,
                    kind: EventKind::Rejected,
                    detail: 0,
                    flag: false,
                });
            }
            if let Some(ledgers) = &shared.class_admission {
                let mut l = ledgers[route.shard].lock().expect("class ledger");
                l[class].rejected += 1;
                l[class].value_rejected += value;
            }
            // A rejection is synchronous: the caller sees it, no event
            // is owed, so the provisional ticket is withdrawn and its
            // window slot released. The leader's pending cache entry
            // dies with it; followers shed as Overflow — the rejection
            // means the shard queue was full or closed, and no more
            // specific shed reason exists for "leader never enqueued".
            if let Some(entry) = &lead {
                entry.fail(ShedReason::Overflow);
            }
            if let Some(t) = &ticket {
                t.slot().retract();
            }
            return SubmitOutcome::Rejected;
        }
        SubmitOutcome::ShedAdmission(()) => unreachable!("queues never shed at admission"),
        SubmitOutcome::Cached(()) | SubmitOutcome::Coalesced(()) => {
            unreachable!("queues never consult the cache")
        }
    }
    outcome.map(|()| ticket)
}

// ams-lint: begin(no-panic) worker hot loop — a panicking worker strands
// its shard queue and every in-flight ticket on it

/// One worker: pop → shed stale → label → batch-admit → record, until the
/// shard queue closes and drains. `worker` is the server-wide worker
/// index — the key of this worker's private observability event ring.
/// With adaptation on, `adapt` carries the worker's experience tap and
/// its pinned snapshot predictor; `None` labels through the scheduler's
/// own frozen predictor, byte-identical to a server without adaptation.
fn worker_loop(
    shared: &Shared,
    shard: usize,
    worker: usize,
    mut adapt: Option<WorkerAdapt>,
) -> WorkerLocal {
    let zoo = shared.scheduler.zoo();
    let n = zoo.len();
    // One bounds check each here instead of one per batch below: the
    // worker is pinned to `shard` for its whole life.
    let queue = &shared.queues[shard]; // ams-lint: allow(no-panic) shard < queues.len() — workers are spawned one per existing shard
    let control = &shared.controls[shard]; // ams-lint: allow(no-panic) shard < controls.len() — controls is built with one entry per shard
    let num_classes = shared.cfg.slo.as_ref().map_or(0, |s| s.classes.len());
    let mut local = WorkerLocal::new(n, num_classes);
    let mut runs_per_model = vec![0usize; n];
    loop {
        // Under adaptive batching the shard's live limit replaces the
        // static one; the controller retunes it between pops.
        let limit = if shared.cfg.adaptive.is_some() {
            control.limit.load(Ordering::Relaxed)
        } else {
            shared.cfg.max_batch
        };
        let batch =
            queue.pop_batch_lingering(limit, Duration::from_millis(shared.cfg.batch_linger_ms));
        if batch.is_empty() {
            return local;
        }
        let exec_start = Instant::now();

        // Deadline-aware shedding: a request whose queue age has already
        // exhausted its deadline budget (its SLO class deadline, or the
        // server-wide request timeout when no classes are configured —
        // `submit` stamped whichever applies onto the request) is dropped
        // before any work is spent on it. A shed request is accounted
        // exactly once — in `shed_deadline` — and never reaches the stats
        // (the recall denominator) or the latency histograms.
        //
        // Cancellation races resolve here: a ticketed request is *claimed*
        // (`PENDING → CLAIMED`) before any labeling work, so a cancel that
        // arrives later is too late, while a request cancelled between
        // enqueue and this point is skipped without ledgering anything —
        // the cancellation already delivered its terminal event and
        // recorded itself.
        // The third field marks a *ghost*: a leader whose own ticket
        // already resolved (cancelled) but whose pending cache entry
        // still has live followers. The ghost is labeled and billed like
        // any survivor — the followers' completions need the result —
        // but it is not *completed*: its own terminal event (the
        // cancellation) was already delivered, and counting it again
        // would break ticket/event exactly-once.
        let mut survivors: Vec<(Request, Duration, bool)> = Vec::with_capacity(batch.len());
        for req in batch {
            let now = Instant::now();
            let wait = now.saturating_duration_since(req.enqueued_at);
            if req.expired(now) {
                // An expired leader takes its coalesced followers down
                // with it, whoever owns the leader's own shed event.
                req.fail_cache(ShedReason::Deadline);
                let owns_shed = match req.completion() {
                    Some(slot) => slot.try_shed(ShedReason::Deadline),
                    None => true,
                };
                if owns_shed {
                    local.shed_deadline += 1;
                    if let Some(cl) = local.classes.get_mut(req.class) {
                        cl.shed_deadline += 1;
                        cl.value_shed_deadline += req.value;
                    }
                    if let Some(obs) = &shared.obs {
                        obs.emit_worker(
                            worker,
                            Event {
                                at_us: obs.now_us(),
                                req: req.req_id,
                                ticket: req.completion().map_or(NO_TICKET, |s| s.id()),
                                shard: shard as u32,
                                class: req.class as u32,
                                kind: EventKind::ShedDeadline,
                                detail: wait.as_micros().min(u128::from(u64::MAX)) as u64,
                                flag: false,
                            },
                        );
                    }
                }
            } else {
                let claimed = match req.completion() {
                    Some(slot) => slot.try_claim(),
                    None => true,
                };
                if claimed {
                    survivors.push((req, wait, false));
                } else if req.cache_entry().is_some_and(|e| e.wanted_or_abandon()) {
                    // Cancelled leader with waiters: promote to ghost —
                    // execute for the followers' sake. With no waiters
                    // the entry abandons itself and the slot is free for
                    // the next submission of the same content.
                    survivors.push((req, wait, true));
                }
            }
        }
        if survivors.is_empty() {
            // The whole round was shed: no batch executed, nothing to
            // observe or charge.
            continue;
        }
        local.batches += 1;
        local.max_batch_observed = local.max_batch_observed.max(survivors.len());
        if let Some(obs) = &shared.obs {
            obs.batch_started(shard, survivors.len());
            let size = survivors.len() as u64;
            for (req, _, _) in &survivors {
                obs.emit_worker(
                    worker,
                    Event {
                        at_us: obs.now_us(),
                        req: req.req_id,
                        ticket: req.completion().map_or(NO_TICKET, |s| s.id()),
                        shard: shard as u32,
                        class: req.class as u32,
                        kind: EventKind::Batched,
                        detail: size,
                        flag: false,
                    },
                );
            }
        }

        // Label each survivor; collect the batch's per-model run counts.
        // With adaptation on, repin the snapshot predictor first — one
        // atomic generation check per batch, so every predict in this
        // batch runs against one coherent weight set even while the
        // trainer publishes mid-batch.
        if let Some(a) = adapt.as_mut() {
            a.refresh();
        }
        runs_per_model.fill(0);
        let outcomes: Vec<_> = survivors
            .iter()
            .map(|(req, _, _)| {
                let outcome = match &adapt {
                    Some(a) => {
                        shared
                            .scheduler
                            .label_item_with(&a.predictor, &req.item, shared.budget)
                    }
                    None => shared.scheduler.label_item(&req.item, shared.budget),
                };
                for &m in &outcome.executed {
                    runs_per_model[m.index()] += 1; // ams-lint: allow(no-panic) m.index() < zoo.len() == runs_per_model.len()
                }
                outcome
            })
            .collect();

        // Batched admission: one invocation per model over the whole
        // coalesced batch, packed into the virtual GPU pool.
        let groups: Vec<(Job, usize)> = runs_per_model
            .iter()
            .enumerate()
            .filter(|&(_, &count)| count > 0)
            .map(|(m, &count)| {
                let spec = zoo.spec(ModelId(m as u8));
                (
                    Job {
                        id: m,
                        time_ms: spec.time_ms,
                        mem_mb: spec.mem_mb,
                    },
                    count,
                )
            })
            .collect();
        let makespan_ms = batched_makespan(&groups, shared.cfg.pool_mb, &shared.cfg.batch_model);
        local.model_invocations += groups.len() as u64;
        local.virtual_work_ms += groups
            .iter()
            .map(|&(job, count)| shared.cfg.batch_model.batch_time_ms(job.time_ms, count))
            .sum::<u64>();
        local.virtual_exec_ms += makespan_ms;
        if shared.cfg.exec_emulation_scale > 0.0 && makespan_ms > 0 {
            let wait_ms = makespan_ms as f64 * shared.cfg.exec_emulation_scale;
            std::thread::sleep(Duration::from_secs_f64(wait_ms / 1000.0));
        }

        // Whole batch completes together; each member is charged the
        // batch's execute span on top of its own queue wait.
        let exec_elapsed = exec_start.elapsed();
        // Publish the amortized per-request service time — the headroom
        // signal admission control prices queue depth with — and the
        // queue's drain rate (service time ÷ the workers sharing the
        // queue), which value-weighted eviction prices its doom horizon
        // with. Same yardstick as admission, so the two policies agree on
        // what a queued request's wait looks like.
        let amortized = control.publish_amortized(exec_elapsed, survivors.len());
        queue.set_service_hint_us((amortized / shared.cfg.workers_per_shard as u64).max(1));
        let exec_us = exec_elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        if let Some(obs) = &shared.obs {
            obs.batch_finished(shard, survivors.len(), exec_us);
        }
        for ((req, wait, ghost), outcome) in survivors.iter().zip(outcomes) {
            // Feed the trainer (non-blocking; a full channel drops and
            // counts). Ghosts included — their executions were real.
            if let Some(a) = &adapt {
                a.offer(&req.item, &outcome.executed);
            }
            // Publish into the cache first: followers fan out the moment
            // the leader resolves, and the entry flips to `Done` so the
            // next identical submission is an exact hit.
            if let (Some(cache), Some(entry)) = (&shared.cache, req.cache_entry()) {
                cache.resolve(
                    entry,
                    CachedResult {
                        labels: outcome.labels.clone(),
                        executed: outcome.executed.clone(),
                        label_value: outcome.value,
                        recall: outcome.recall,
                    },
                    req.value,
                );
            }
            if *ghost {
                // Billed above (its model runs are in `runs_per_model`),
                // but its own ticket already resolved as cancelled —
                // nothing to complete, record, or deliver.
                if let Some(obs) = &shared.obs {
                    obs.emit_worker(
                        worker,
                        Event {
                            at_us: obs.now_us(),
                            req: req.req_id,
                            ticket: req.completion().map_or(NO_TICKET, |s| s.id()),
                            shard: shard as u32,
                            class: req.class as u32,
                            kind: EventKind::GhostExecuted,
                            detail: exec_us,
                            flag: false,
                        },
                    );
                }
                continue;
            }
            local.stats.absorb(&outcome, shared.cfg.alert_recall);
            local.queue_wait.record(*wait);
            local.execute.record(exec_elapsed);
            let total = *wait + exec_elapsed;
            local.total.record(total);
            local.completed += 1;
            let met = req
                .deadline_us
                .is_none_or(|d| total.as_micros().min(u128::from(u64::MAX)) as u64 <= d);
            if let Some(cl) = local.classes.get_mut(req.class) {
                cl.completed += 1;
                cl.value_completed += req.value;
                cl.total.record(total);
                cl.deadline_met += u64::from(met);
                if !met {
                    cl.value_late += req.value;
                }
            }
            if let Some(obs) = &shared.obs {
                let at = obs.now_us();
                let t = req.completion().map_or(NO_TICKET, |s| s.id());
                obs.emit_worker(
                    worker,
                    Event {
                        at_us: at,
                        req: req.req_id,
                        ticket: t,
                        shard: shard as u32,
                        class: req.class as u32,
                        kind: EventKind::Executed,
                        detail: exec_us,
                        flag: false,
                    },
                );
                obs.emit_worker(
                    worker,
                    Event {
                        at_us: at,
                        req: req.req_id,
                        ticket: t,
                        shard: shard as u32,
                        class: req.class as u32,
                        kind: EventKind::Labeled,
                        detail: total.as_micros().min(u128::from(u64::MAX)) as u64,
                        flag: !met,
                    },
                );
            }
            // Per-request delivery: the claimed slot receives the
            // request's *own* labels and latency split — the payload the
            // aggregate-only path folds into `ServeReport::stats`.
            if let Some(slot) = req.completion() {
                slot.finish_labeled(LabelResult {
                    ticket: slot.id(),
                    class: req.class,
                    labels: outcome.labels,
                    executed: outcome.executed,
                    label_value: outcome.value,
                    banked_value: req.value,
                    recall: outcome.recall,
                    queue_wait_us: wait.as_micros().min(u128::from(u64::MAX)) as u64,
                    execute_us: exec_us,
                    deadline_met: met,
                });
            }
        }
        if let Some(acfg) = &shared.cfg.adaptive {
            control.observe_batch(
                survivors.iter().map(|(_, wait, _)| *wait),
                exec_elapsed,
                acfg,
                &shared.cfg.batch_model,
            );
        }
    }
}

// ams-lint: end(no-panic)
