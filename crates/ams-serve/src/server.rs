//! The serving front-end: hash-sharded bounded queues feeding per-shard
//! worker pools over one shared [`AdaptiveModelScheduler`].
//!
//! Life of a request: `submit` hashes the item's scene id to a shard and
//! pushes it into that shard's queue under the configured backpressure
//! policy. A shard worker pops up to `max_batch` queued requests, sheds
//! those whose age has already reached the request timeout, labels the
//! rest through the scheduler, coalesces the batch's model executions into
//! batched invocations on the virtual GPU pool (the `ams-sim` batching
//! model — one memory acquisition and one setup charge per model, marginal
//! cost per extra item), and records the queue-wait / execute latency
//! split. `shutdown` closes the queues, drains every worker gracefully,
//! and merges the per-worker shards into one [`ServeReport`].

use crate::queue::{BackpressurePolicy, Request, ShardQueue, SubmitOutcome};
use crate::telemetry::{LatencyHistogram, LatencySummary};
use ams_core::framework::{AdaptiveModelScheduler, Budget};
use ams_core::streaming::StreamStats;
use ams_data::ItemTruth;
use ams_models::ModelId;
use ams_sim::{batched_makespan, BatchLatencyModel, Job};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Serving front-end configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Hash shards (each with its own bounded queue). Min 1.
    pub shards: usize,
    /// Workers per shard. Min 1.
    pub workers_per_shard: usize,
    /// Pending-request capacity of each shard queue. Min 1.
    pub queue_capacity: usize,
    /// What a full queue does to the next submission.
    pub policy: BackpressurePolicy,
    /// Max requests a worker coalesces into one batched admission. Min 1.
    pub max_batch: usize,
    /// Calibrated setup + marginal latency split for batched invocations.
    pub batch_model: BatchLatencyModel,
    /// Virtual GPU pool each batched invocation packs into, MB.
    pub pool_mb: u32,
    /// Deadline-aware shedding: a dequeued request whose queue age has
    /// reached this many wall-clock milliseconds is shed, not executed
    /// (`None` disables; `Some(0)` sheds everything — useful in tests).
    pub request_timeout_ms: Option<u64>,
    /// Wall-clock milliseconds slept per *virtual* millisecond of each
    /// batch's execution makespan (see
    /// [`ams_core::streaming::StreamProcessor::exec_emulation_scale`]);
    /// batching pays one wait per batch, not per item.
    pub exec_emulation_scale: f64,
    /// Items below this recall increment [`StreamStats::low_recall_items`].
    pub alert_recall: f64,
}

impl Default for ServeConfig {
    /// 4 shards × 1 worker, 64-deep queues, lossless blocking admission,
    /// batches of up to 8 on a 12 GB pool — the paper's single-P100 shape.
    fn default() -> Self {
        Self {
            shards: 4,
            workers_per_shard: 1,
            queue_capacity: 64,
            policy: BackpressurePolicy::default(),
            max_batch: 8,
            batch_model: BatchLatencyModel::default(),
            pool_mb: 12_288,
            request_timeout_ms: None,
            exec_emulation_scale: 0.0,
            alert_recall: 0.5,
        }
    }
}

/// The merged end-of-run serving record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeReport {
    /// Shard count the server ran with.
    pub shards: usize,
    /// Total worker threads.
    pub workers: usize,
    /// Backpressure policy name.
    pub policy: String,
    /// Requests offered to `submit` (accepted + rejected).
    pub offered: u64,
    /// Requests accepted into a queue.
    pub submitted: u64,
    /// Requests labeled to completion.
    pub completed: u64,
    /// Requests refused at admission (full queue under Reject, or closed).
    pub rejected: u64,
    /// Queued requests dropped by the ShedOldest policy.
    pub shed_oldest: u64,
    /// Dequeued requests dropped because their queue age reached the
    /// request timeout.
    pub shed_deadline: u64,
    /// Batched invocation rounds the workers ran.
    pub batches: u64,
    /// Largest coalesced batch observed.
    pub max_batch_observed: usize,
    /// Sum of the batches' virtual execution makespans, ms. Batching and
    /// pool parallelism compress this below the serial sum of the same
    /// items' execution times ([`StreamStats::total_exec_ms`]).
    pub virtual_exec_ms: u64,
    /// Wall-clock time requests spent queued.
    pub queue_wait: LatencySummary,
    /// Wall-clock time requests spent in a worker (label + batched wait).
    pub execute: LatencySummary,
    /// Queue wait + execute, per request.
    pub total: LatencySummary,
    /// Merged labeling statistics over completed requests — field-for-field
    /// what a serial [`ams_core::streaming::StreamProcessor`] produces over
    /// the same items when nothing is shed.
    pub stats: StreamStats,
}

impl ServeReport {
    /// Shed + rejected share of offered load (0 when nothing was offered).
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        (self.rejected + self.shed_oldest + self.shed_deadline) as f64 / self.offered as f64
    }

    /// Every offered request is accounted for exactly once.
    pub fn is_conserved(&self) -> bool {
        self.offered == self.completed + self.rejected + self.shed_oldest + self.shed_deadline
    }
}

/// Shared server state (queues + scheduler), behind one `Arc`.
struct Shared {
    queues: Vec<ShardQueue>,
    scheduler: AdaptiveModelScheduler,
    budget: Budget,
    cfg: ServeConfig,
    offered: AtomicU64,
    submitted: AtomicU64,
    rejected: AtomicU64,
}

/// Per-worker accumulators, merged at shutdown.
struct WorkerLocal {
    stats: StreamStats,
    queue_wait: LatencyHistogram,
    execute: LatencyHistogram,
    total: LatencyHistogram,
    completed: u64,
    shed_deadline: u64,
    batches: u64,
    max_batch_observed: usize,
    virtual_exec_ms: u64,
}

impl WorkerLocal {
    fn new(num_models: usize) -> Self {
        Self {
            stats: StreamStats::with_models(num_models),
            queue_wait: LatencyHistogram::default(),
            execute: LatencyHistogram::default(),
            total: LatencyHistogram::default(),
            completed: 0,
            shed_deadline: 0,
            batches: 0,
            max_batch_observed: 0,
            virtual_exec_ms: 0,
        }
    }
}

/// The sharded serving front-end.
///
/// ```
/// use ams_core::framework::{AdaptiveModelScheduler, Budget};
/// use ams_core::predictor::OraclePredictor;
/// use ams_data::{Dataset, DatasetProfile, TruthTable};
/// use ams_models::ModelZoo;
/// use ams_serve::{AmsServer, ServeConfig};
/// use std::sync::Arc;
///
/// let zoo = ModelZoo::standard();
/// let ds = Dataset::generate(DatasetProfile::Coco2017, 8, 42);
/// let truth = TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5);
/// let predictor = Box::new(OraclePredictor::new(zoo.len(), 0.5));
/// let scheduler = AdaptiveModelScheduler::new(zoo, predictor, 0.5, 42);
///
/// let server = AmsServer::start(scheduler, Budget::Deadline { ms: 1000 }, ServeConfig::default());
/// for item in truth.items() {
///     server.submit(Arc::new(item.clone()));
/// }
/// let report = server.shutdown();
/// assert_eq!(report.completed, 8);
/// assert!(report.is_conserved());
/// ```
pub struct AmsServer {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<WorkerLocal>>,
}

impl AmsServer {
    /// Spin up the shard queues and worker threads.
    pub fn start(scheduler: AdaptiveModelScheduler, budget: Budget, cfg: ServeConfig) -> Self {
        let cfg = ServeConfig {
            shards: cfg.shards.max(1),
            workers_per_shard: cfg.workers_per_shard.max(1),
            queue_capacity: cfg.queue_capacity.max(1),
            max_batch: cfg.max_batch.max(1),
            ..cfg
        };
        let queues = (0..cfg.shards)
            .map(|_| ShardQueue::new(cfg.queue_capacity, cfg.policy))
            .collect();
        let shared = Arc::new(Shared {
            queues,
            scheduler,
            budget,
            cfg,
            offered: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        });
        let workers = (0..shared.cfg.shards * shared.cfg.workers_per_shard)
            .map(|w| {
                let shared = Arc::clone(&shared);
                let shard = w / shared.cfg.workers_per_shard;
                std::thread::spawn(move || worker_loop(&shared, shard))
            })
            .collect();
        Self { shared, workers }
    }

    /// The shard an item routes to (Fibonacci-hashed scene id).
    pub fn shard_of(&self, item: &ItemTruth) -> usize {
        (item.scene_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize % self.shared.cfg.shards
    }

    /// Submit one item for labeling under the shard's backpressure policy.
    /// Under [`BackpressurePolicy::Block`] this call waits for queue space.
    pub fn submit(&self, item: Arc<ItemTruth>) -> SubmitOutcome {
        let shard = self.shard_of(&item);
        self.shared.offered.fetch_add(1, Ordering::Relaxed);
        let outcome = self.shared.queues[shard].push(item);
        match outcome {
            SubmitOutcome::Enqueued | SubmitOutcome::EnqueuedShedOldest => {
                self.shared.submitted.fetch_add(1, Ordering::Relaxed);
            }
            SubmitOutcome::Rejected => {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
            }
        }
        outcome
    }

    /// Requests currently queued across all shards (racy snapshot).
    pub fn pending(&self) -> usize {
        self.shared.queues.iter().map(ShardQueue::len).sum()
    }

    /// Close admission, drain every queue through the workers, join them,
    /// and merge the per-worker shards into the final report.
    pub fn shutdown(self) -> ServeReport {
        for q in &self.shared.queues {
            q.close();
        }
        let num_models = self.shared.scheduler.zoo().len();
        let mut merged = WorkerLocal::new(num_models);
        for handle in self.workers {
            let local = handle.join().expect("serve worker panicked");
            merged.stats.merge(&local.stats);
            merged.queue_wait.merge(&local.queue_wait);
            merged.execute.merge(&local.execute);
            merged.total.merge(&local.total);
            merged.completed += local.completed;
            merged.shed_deadline += local.shed_deadline;
            merged.batches += local.batches;
            merged.max_batch_observed = merged.max_batch_observed.max(local.max_batch_observed);
            merged.virtual_exec_ms += local.virtual_exec_ms;
        }
        let shed_oldest: u64 = self
            .shared
            .queues
            .iter()
            .map(ShardQueue::shed_oldest_count)
            .sum();
        ServeReport {
            shards: self.shared.cfg.shards,
            workers: self.shared.cfg.shards * self.shared.cfg.workers_per_shard,
            policy: self.shared.cfg.policy.name().to_string(),
            offered: self.shared.offered.load(Ordering::Relaxed),
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            completed: merged.completed,
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            shed_oldest,
            shed_deadline: merged.shed_deadline,
            batches: merged.batches,
            max_batch_observed: merged.max_batch_observed,
            virtual_exec_ms: merged.virtual_exec_ms,
            queue_wait: merged.queue_wait.summary(),
            execute: merged.execute.summary(),
            total: merged.total.summary(),
            stats: merged.stats,
        }
    }
}

/// One worker: pop → shed stale → label → batch-admit → record, until the
/// shard queue closes and drains.
fn worker_loop(shared: &Shared, shard: usize) -> WorkerLocal {
    let zoo = shared.scheduler.zoo();
    let n = zoo.len();
    let mut local = WorkerLocal::new(n);
    let mut runs_per_model = vec![0usize; n];
    loop {
        let batch = shared.queues[shard].pop_batch(shared.cfg.max_batch);
        if batch.is_empty() {
            return local;
        }
        local.batches += 1;
        local.max_batch_observed = local.max_batch_observed.max(batch.len());
        let exec_start = Instant::now();

        // Deadline-aware shedding: a request whose queue age has already
        // reached the timeout is dropped before any work is spent on it.
        let mut survivors: Vec<(Request, Duration)> = Vec::with_capacity(batch.len());
        for req in batch {
            let wait = req.enqueued_at.elapsed();
            let expired = shared
                .cfg
                .request_timeout_ms
                .is_some_and(|t| wait.as_micros() as u64 >= t.saturating_mul(1000));
            if expired {
                local.shed_deadline += 1;
            } else {
                survivors.push((req, wait));
            }
        }

        // Label each survivor; collect the batch's per-model run counts.
        runs_per_model.fill(0);
        let outcomes: Vec<_> = survivors
            .iter()
            .map(|(req, _)| {
                let outcome = shared.scheduler.label_item(&req.item, shared.budget);
                for &m in &outcome.executed {
                    runs_per_model[m.index()] += 1;
                }
                outcome
            })
            .collect();

        // Batched admission: one invocation per model over the whole
        // coalesced batch, packed into the virtual GPU pool.
        let groups: Vec<(Job, usize)> = runs_per_model
            .iter()
            .enumerate()
            .filter(|&(_, &count)| count > 0)
            .map(|(m, &count)| {
                let spec = zoo.spec(ModelId(m as u8));
                (
                    Job {
                        id: m,
                        time_ms: spec.time_ms,
                        mem_mb: spec.mem_mb,
                    },
                    count,
                )
            })
            .collect();
        let makespan_ms = batched_makespan(&groups, shared.cfg.pool_mb, &shared.cfg.batch_model);
        local.virtual_exec_ms += makespan_ms;
        if shared.cfg.exec_emulation_scale > 0.0 && makespan_ms > 0 {
            let wait_ms = makespan_ms as f64 * shared.cfg.exec_emulation_scale;
            std::thread::sleep(Duration::from_secs_f64(wait_ms / 1000.0));
        }

        // Whole batch completes together; each member is charged the
        // batch's execute span on top of its own queue wait.
        let exec_elapsed = exec_start.elapsed();
        for ((_, wait), outcome) in survivors.iter().zip(&outcomes) {
            local.stats.absorb(outcome, shared.cfg.alert_recall);
            local.queue_wait.record(*wait);
            local.execute.record(exec_elapsed);
            local.total.record(*wait + exec_elapsed);
            local.completed += 1;
        }
    }
}
