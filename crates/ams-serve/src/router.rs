//! Model-affinity request routing: steer requests whose *predicted
//! dominant model sets* match onto the same shard, so the worker there
//! coalesces bigger same-model batches.
//!
//! Hash sharding (the PR-2 default) spreads similar requests uniformly:
//! two album photos that would both run the same five detectors land on
//! different shards and each pays the per-invocation setup charge alone.
//! The affinity router instead fingerprints each request with a cheap
//! top-k scan of its per-model value profile
//! ([`AdaptiveModelScheduler::affinity_signature`] — no predictor forward,
//! no labeling work) and keys placement on it at two granularities:
//!
//! * **placement** uses the *coarse* top-1 key — every request leaning on
//!   the same dominant model shares a home shard, so even a lightly
//!   loaded shard's whole queue is mutually similar and its take-all
//!   batches coalesce;
//! * **batch grouping** uses the full `top_k` signature, which rides on
//!   the request into the queue — when a queue runs deep, the
//!   signature-aware [`pop_batch`](crate::queue::ShardQueue::pop_batch)
//!   assembles signature-pure batches out of it.
//!
//! Batch coalescing becomes deliberate: same-model groups concentrate, and
//! the [`BatchLatencyModel`](ams_sim::BatchLatencyModel) setup charge
//! amortizes over more items.
//!
//! A **load-balance escape hatch** keeps the skew honest: every signature
//! also names a deterministic *alternate* shard, and when the home queue is
//! full or lags the alternate by more than `spill_lag` requests, the
//! request *spills* to the alternate — still signature-keyed, so a hot
//! cluster splits across two shards instead of scattering and its batches
//! keep coalescing. Only when both choices are full does the router fall
//! back to the least-loaded shard. No shard hot-spots (bounded lag), no
//! shard starves (overflow traffic flows outward), and under uniform
//! traffic the router degrades gracefully toward balanced sharding. Hits
//! and spills are counted and published in the
//! [`ServeReport`](crate::ServeReport).
//!
//! For a request carrying an SLO deadline the spill is additionally
//! **deadline-aware**: each candidate shard is priced by its *estimated
//! wait* — queue depth × the per-request drain time the shard's workers
//! publish ([`ShardQueue::estimated_wait_us`]) — and a home (or alternate)
//! whose estimated wait already exceeds the request's deadline budget is
//! treated as full, not merely busy. A request that would provably miss
//! its deadline on its affinity home spills to the first choice that can
//! still serve it in time (falling back to the minimum-estimated-wait
//! shard when none can), instead of being routed by load alone into a
//! queue where admission control or the deadline check will only shed it.

use crate::queue::ShardQueue;
use ams_core::framework::{content_hash, AdaptiveModelScheduler, Fingerprint};
use ams_data::ItemTruth;
use std::sync::atomic::{AtomicU64, Ordering};

/// Fibonacci multiplicative hash to a shard index — the one hash-placement
/// function in the crate. Everything that needs "the shard a key homes to"
/// (the hash routing mode, the affinity router's signature placement,
/// [`AmsServer::shard_of`](crate::AmsServer::shard_of)) calls this, so the
/// constants cannot drift between call sites.
pub fn fib_shard(key: u64, shards: usize) -> usize {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize % shards.max(1)
}

/// Fingerprint width of the value scan used when routing doesn't need a
/// signature (hash mode): wide enough to estimate a request's label value
/// for SLO-aware shedding, matching [`AffinityConfig::default`]'s `top_k`.
const VALUE_SCAN_TOP_K: usize = 2;

/// Knobs of the affinity routing mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AffinityConfig {
    /// Models in the fingerprint: the top-k by static output value on the
    /// item. Small k clusters aggressively (few distinct signatures, deep
    /// coalescing), large k splits finer.
    pub top_k: usize,
    /// Escape hatch: route to the signature's *alternate* shard when the
    /// home queue is full or lags the alternate by more than this many
    /// requests. 0 degenerates to two-choice join-shortest-queue over the
    /// signature's shard pair.
    pub spill_lag: usize,
}

impl Default for AffinityConfig {
    /// Top-2 fingerprint — measured on the bench fixture, the coarse
    /// two-model key clusters best (finer keys fragment clusters faster
    /// than they purify batches) — and spill at 8 requests of lag, one
    /// default batch of slack before the balancer overrides affinity.
    fn default() -> Self {
        Self {
            top_k: 2,
            spill_lag: 8,
        }
    }
}

/// How submissions map to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingMode {
    /// Hash the scene id (uniform spread, PR-2 behavior).
    #[default]
    Hash,
    /// Model-affinity routing with a load-balance escape hatch.
    Affinity(AffinityConfig),
}

impl RoutingMode {
    /// Stable lowercase name for reports and JSON records.
    pub fn name(&self) -> &'static str {
        match self {
            RoutingMode::Hash => "hash",
            RoutingMode::Affinity(_) => "affinity",
        }
    }
}

/// Where a request was routed, and why.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Route {
    /// The shard the request should be pushed to.
    pub shard: usize,
    /// The affinity signature the decision keyed on (0 under hash routing);
    /// rides into the queue so dequeues can group same-signature work.
    pub signature: u64,
    /// The request's predicted label value: the summed static value of the
    /// fingerprinted models
    /// ([`AdaptiveModelScheduler::affinity_value_scan`]). Computed during
    /// the routing scan, so SLO-aware shedding gets its value estimate for
    /// free with routing.
    pub value: f64,
    /// Whether the affinity home shard was used (`false` for spills; always
    /// `true` under hash routing, whose home is the hash itself).
    pub affine: bool,
}

/// The shard router: mode plus hit/spill accounting.
#[derive(Debug)]
pub struct Router {
    mode: RoutingMode,
    shards: usize,
    hash_value_scan: bool,
    affinity_hits: AtomicU64,
    affinity_spills: AtomicU64,
}

impl Router {
    /// Router over `shards` shards (min 1).
    pub fn new(mode: RoutingMode, shards: usize) -> Self {
        Self {
            mode,
            shards: shards.max(1),
            hash_value_scan: true,
            affinity_hits: AtomicU64::new(0),
            affinity_spills: AtomicU64::new(0),
        }
    }

    /// Skip the value scan in hash mode (`Route::value` reads 0.0): the
    /// scan exists for SLO-aware shedding, so a server without SLO
    /// classes shouldn't pay it on every submission. Affinity mode scans
    /// regardless — there the scan *is* the routing key and the value is
    /// free.
    pub fn without_hash_value_scan(mut self) -> Self {
        self.hash_value_scan = false;
        self
    }

    /// The configured routing mode.
    pub fn mode(&self) -> RoutingMode {
        self.mode
    }

    /// Requests routed to their affinity home shard so far.
    pub fn affinity_hits(&self) -> u64 {
        self.affinity_hits.load(Ordering::Relaxed)
    }

    /// Requests diverted to the least-loaded shard by the escape hatch.
    pub fn affinity_spills(&self) -> u64 {
        self.affinity_spills.load(Ordering::Relaxed)
    }

    /// Compute the one per-request [`Fingerprint`] the whole submission
    /// path shares: routing placement, batch grouping, SLO admission
    /// pricing, and (when `with_content` is set) the content-addressed
    /// result cache all key off this single top-k scan. The scan width
    /// follows the routing mode (`top_k` under affinity, the fixed
    /// [`VALUE_SCAN_TOP_K`] under hash), and a hash-mode router that opted
    /// out of the value scan skips it entirely — the no-SLO, no-cache
    /// submission path pays exactly what it paid before. The content hash
    /// is only computed when a cache will consume it.
    pub fn fingerprint(
        &self,
        scheduler: &AdaptiveModelScheduler,
        item: &ItemTruth,
        with_content: bool,
    ) -> Fingerprint {
        let (signature, value) = match self.mode {
            // A hash-mode router that opted out of the value scan skips it
            // even when the cache wants a content hash — the scan feeds
            // SLO shedding, not the cache key. Hash mode never carries a
            // batch-grouping signature (placement is the scene hash), so
            // the fingerprint's signature stays 0 either way.
            RoutingMode::Hash if !self.hash_value_scan => (0, 0.0),
            RoutingMode::Hash => (0, scheduler.affinity_value_scan(item, VALUE_SCAN_TOP_K).1),
            RoutingMode::Affinity(cfg) => scheduler.affinity_value_scan(item, cfg.top_k),
        };
        Fingerprint {
            signature,
            value,
            content: if with_content { content_hash(item) } else { 0 },
        }
    }

    /// Whether a shard can plausibly serve a request within `deadline_us`:
    /// its estimated drain wait (depth × the workers' published
    /// per-request drain time) fits the budget. With no deadline, or no
    /// published evidence yet, every shard fits — the check only ever
    /// *adds* reasons to spill, never invents them.
    fn fits_deadline(q: &ShardQueue, deadline_us: Option<u64>) -> bool {
        match deadline_us {
            Some(d) => {
                let wait = q.estimated_wait_us();
                wait == 0 || wait <= d
            }
            None => true,
        }
    }

    /// Pick the shard for `item` and record the hit/spill. The caller
    /// passes the request's precomputed [`Fingerprint`] (from
    /// [`Router::fingerprint`]) — the top-k value scan runs exactly once
    /// per request, shared between routing, admission pricing, and the
    /// result cache, instead of being recomputed here. A request carrying
    /// an SLO deadline passes it as `deadline_us`, which makes the
    /// affinity spill deadline-aware (see the module docs). Queue lengths
    /// and wait estimates are racy snapshots — good enough for balancing,
    /// never consulted for correctness (any shard labels any item
    /// identically).
    pub fn route(
        &self,
        fp: &Fingerprint,
        item: &ItemTruth,
        queues: &[ShardQueue],
        deadline_us: Option<u64>,
    ) -> Route {
        match self.mode {
            RoutingMode::Hash => Route {
                shard: fib_shard(item.scene_id, self.shards),
                signature: 0,
                value: fp.value,
                affine: true,
            },
            RoutingMode::Affinity(cfg) => {
                let (sig, value) = (fp.signature, fp.value);
                // Route on the *coarse* key — the single dominant model,
                // i.e. the highest-value bit of the fingerprint — so every
                // request leaning on that model shares a home even when
                // the rest of its fingerprint differs; the finer `top_k`
                // signature rides along on the request and governs batch
                // grouping inside the queue. Coarse placement keeps a
                // shard's whole queue mutually similar (take-all pops on a
                // lightly loaded shard still coalesce); fine grouping
                // purifies batches when the queue runs deep.
                //
                // An *empty* signature (all-nonpositive value profile) has
                // no dominant model to key on; it falls back to scene-id
                // hash placement. Keying those requests on the constant 0
                // would home every one of them onto the same `fib_shard(0)`
                // pair — a self-inflicted hot spot carrying zero coalescing
                // benefit, since signature-0 requests don't batch-group.
                let route_key = {
                    let mut best: Option<(usize, f64)> = None;
                    let mut bits = sig;
                    while bits != 0 {
                        let m = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let v = item.model_value[m];
                        if best.map(|(_, bv)| v > bv).unwrap_or(true) {
                            best = Some((m, v));
                        }
                    }
                    best.map(|(m, _)| 1u64 << m).unwrap_or(item.scene_id)
                };
                let home = fib_shard(route_key, self.shards);
                // The alternate is also signature-keyed (a second
                // independent hash of the same fingerprint): a cluster that
                // outgrows its home splits across *two* shards, not across
                // all of them, so its batches keep coalescing.
                let alt = if self.shards == 1 {
                    home
                } else {
                    let a = fib_shard(
                        route_key.rotate_left(17) ^ 0xD1B5_4A32_D192_ED03,
                        self.shards,
                    );
                    if a == home {
                        (a + 1) % self.shards
                    } else {
                        a
                    }
                };
                // Cascade: home while it keeps pace with the alternate,
                // alternate while it keeps pace with the emptiest shard,
                // else the emptiest shard — so a hot signature pair sheds
                // its true overflow toward idle workers instead of
                // stalling the producer while they starve. Spilled
                // requests still carry the signature, and the
                // signature-aware dequeue re-groups them wherever they
                // land. The hit path touches only the pair's queues; the
                // full least-loaded scan is paid on spills alone.
                let home_len = queues[home].len();
                let alt_len = queues[alt].len();
                let home_ok = home_len < queues[home].capacity()
                    && home_len <= alt_len + cfg.spill_lag
                    && Self::fits_deadline(&queues[home], deadline_us);
                if home_ok || alt == home {
                    self.affinity_hits.fetch_add(1, Ordering::Relaxed);
                    return Route {
                        shard: home,
                        signature: sig,
                        value,
                        affine: true,
                    };
                }
                self.affinity_spills.fetch_add(1, Ordering::Relaxed);
                let (mut least, mut least_len) = (alt, alt_len);
                for (i, q) in queues.iter().enumerate() {
                    let len = q.len();
                    if len < least_len {
                        least = i;
                        least_len = len;
                    }
                }
                let alt_ok = alt_len < queues[alt].capacity()
                    && alt_len <= least_len + cfg.spill_lag
                    && Self::fits_deadline(&queues[alt], deadline_us);
                if alt_ok {
                    return Route {
                        shard: alt,
                        signature: sig,
                        value,
                        affine: false,
                    };
                }
                // Neither signature shard can serve the request in time
                // (or both are full): pick by *estimated wait* against the
                // deadline, not load alone — the least-loaded shard may
                // still be the slowest-draining one. Without a deadline
                // (or without published drain evidence) this degrades to
                // the classic least-loaded cascade.
                let escape = if deadline_us.is_some() {
                    queues
                        .iter()
                        .enumerate()
                        .filter(|(_, q)| q.len() < q.capacity())
                        .min_by_key(|(i, q)| (q.estimated_wait_us(), q.len(), *i))
                        .map(|(i, _)| i)
                        .unwrap_or(least)
                } else {
                    least
                };
                Route {
                    shard: escape,
                    signature: sig,
                    value,
                    affine: false,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::BackpressurePolicy;
    use ams_core::predictor::OraclePredictor;
    use ams_data::{Dataset, DatasetProfile, TruthTable};
    use ams_models::ModelZoo;
    use std::sync::Arc;

    fn scheduler() -> AdaptiveModelScheduler {
        let zoo = ModelZoo::standard();
        let predictor = Box::new(OraclePredictor::new(zoo.len(), 0.5));
        AdaptiveModelScheduler::new(zoo, predictor, 0.5, 64)
    }

    fn truth(items: usize) -> TruthTable {
        let zoo = ModelZoo::standard();
        let ds = Dataset::generate(DatasetProfile::Coco2017, items, 64);
        TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5)
    }

    fn queues(n: usize, cap: usize) -> Vec<ShardQueue> {
        (0..n)
            .map(|_| ShardQueue::new(cap, BackpressurePolicy::Reject))
            .collect()
    }

    /// Fingerprint-then-route, as the server's submission path does.
    fn route_via(
        r: &Router,
        s: &AdaptiveModelScheduler,
        item: &ItemTruth,
        qs: &[ShardQueue],
        deadline_us: Option<u64>,
    ) -> Route {
        r.route(&r.fingerprint(s, item, false), item, qs, deadline_us)
    }

    #[test]
    fn hash_mode_matches_scene_hash_and_counts_nothing() {
        let s = scheduler();
        let t = truth(8);
        let qs = queues(4, 16);
        let r = Router::new(RoutingMode::Hash, 4);
        for item in t.items() {
            let route = route_via(&r, &s, item, &qs, None);
            assert_eq!(route.shard, fib_shard(item.scene_id, 4));
            assert!(route.affine);
        }
        assert_eq!(r.affinity_hits() + r.affinity_spills(), 0);
    }

    #[test]
    fn affinity_mode_is_deterministic_on_idle_queues() {
        let s = scheduler();
        let t = truth(12);
        let qs = queues(4, 16);
        let r = Router::new(RoutingMode::Affinity(AffinityConfig::default()), 4);
        for item in t.items() {
            let a = route_via(&r, &s, item, &qs, None).shard;
            let b = route_via(&r, &s, item, &qs, None).shard;
            assert_eq!(a, b, "same item, same idle queues, same shard");
        }
        assert_eq!(r.affinity_hits(), 24);
        assert_eq!(r.affinity_spills(), 0);
    }

    #[test]
    fn equal_signatures_share_a_home_shard() {
        let s = scheduler();
        let t = truth(20);
        let qs = queues(4, 64);
        let r = Router::new(
            RoutingMode::Affinity(AffinityConfig {
                top_k: 4,
                spill_lag: 64,
            }),
            4,
        );
        let mut by_sig: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for item in t.items() {
            let sig = s.affinity_signature(item, 4);
            let shard = route_via(&r, &s, item, &qs, None).shard;
            if let Some(&prev) = by_sig.get(&sig) {
                assert_eq!(prev, shard, "signature {sig:#x} split across shards");
            }
            by_sig.insert(sig, shard);
        }
    }

    #[test]
    fn escape_hatch_spills_off_a_hot_home_shard() {
        let s = scheduler();
        let t = truth(4);
        let item = Arc::new(t.item(0).clone());
        let qs = queues(2, 8);
        let r = Router::new(
            RoutingMode::Affinity(AffinityConfig {
                top_k: 4,
                spill_lag: 2,
            }),
            2,
        );
        let home = route_via(&r, &s, &item, &qs, None).shard;
        // Load the home queue past the lag threshold; the other stays empty.
        for _ in 0..4 {
            qs[home].push(crate::queue::Request::new(Arc::clone(&item), 0));
        }
        let route = route_via(&r, &s, &item, &qs, None);
        assert_ne!(route.shard, home, "must divert to the least-loaded shard");
        assert!(!route.affine);
        assert!(r.affinity_spills() >= 1);
    }

    #[test]
    fn full_home_queue_always_spills() {
        let s = scheduler();
        let t = truth(2);
        let item = Arc::new(t.item(0).clone());
        let qs = queues(2, 2);
        let r = Router::new(
            RoutingMode::Affinity(AffinityConfig {
                top_k: 4,
                // Lag alone would never trigger; capacity must.
                spill_lag: 1000,
            }),
            2,
        );
        let home = route_via(&r, &s, &item, &qs, None).shard;
        qs[home].push(crate::queue::Request::new(Arc::clone(&item), 0));
        qs[home].push(crate::queue::Request::new(Arc::clone(&item), 0));
        let route = route_via(&r, &s, &item, &qs, None);
        assert_ne!(route.shard, home);
        assert!(!route.affine);
    }

    /// Regression: an item whose value scan comes up empty (signature 0)
    /// used to key placement on the constant 0 — every such item homed to
    /// `fib_shard(0)`, piling one shard pair with zero-coalescing-benefit
    /// traffic. It must fall back to scene-id hash placement instead.
    #[test]
    fn zero_signature_items_fall_back_to_scene_hash_placement() {
        let s = scheduler();
        let t = truth(16);
        let shards = 4usize;
        let qs = queues(shards, 64);
        let r = Router::new(RoutingMode::Affinity(AffinityConfig::default()), shards);
        let mut homes = std::collections::HashSet::new();
        for item in t.items() {
            // Zero out the value profile: the scan yields signature 0.
            let mut flat = item.clone();
            flat.model_value.iter_mut().for_each(|v| *v = 0.0);
            let route = route_via(&r, &s, &flat, &qs, None);
            assert_eq!(route.signature, 0, "empty profile → empty signature");
            assert_eq!(route.value, 0.0);
            assert_eq!(
                route.shard,
                fib_shard(flat.scene_id, shards),
                "scene {} must place by scene-id hash",
                flat.scene_id
            );
            homes.insert(route.shard);
        }
        assert!(
            homes.len() > 1,
            "16 distinct scenes must spread across shards, not pile on one"
        );
    }

    /// SLO-aware spill: a home shard whose *estimated wait* (depth × the
    /// workers' published drain time) exceeds the request's deadline is
    /// spilled away from even though its raw load is within the lag
    /// tolerance — and a deadline-less request still homes normally, so
    /// the behavior is purely additive.
    #[test]
    fn spill_prices_the_home_shard_by_estimated_wait_vs_deadline() {
        let s = scheduler();
        let t = truth(4);
        let item = Arc::new(t.item(0).clone());
        let qs = queues(2, 64);
        let r = Router::new(
            RoutingMode::Affinity(AffinityConfig {
                top_k: 2,
                // Generous lag: load alone would never trigger the spill.
                spill_lag: 50,
            }),
            2,
        );
        let home = route_via(&r, &s, &item, &qs, None).shard;
        // Three queued requests and a published drain time of 0.5 s each:
        // the home's estimated wait is ~1.5 s.
        for _ in 0..3 {
            qs[home].push(crate::queue::Request::new(Arc::clone(&item), 0));
        }
        qs[home].set_service_hint_us(500_000);
        // Deadline-less: still the affinity home (load is fine).
        assert_eq!(route_via(&r, &s, &item, &qs, None).shard, home);
        // A 100 ms deadline cannot survive a 1.5 s wait: spill to the
        // alternate, whose estimated wait (0 — no evidence) fits.
        let route = route_via(&r, &s, &item, &qs, Some(100_000));
        assert_ne!(route.shard, home, "doomed home must be spilled away");
        assert!(!route.affine);
        assert!(r.affinity_spills() >= 1);
        // A lax 10 s deadline tolerates the wait: home again.
        assert_eq!(route_via(&r, &s, &item, &qs, Some(10_000_000)).shard, home);
    }

    /// When no candidate fits the deadline, the escape hatch picks the
    /// minimum *estimated wait* shard, not the least-loaded one: a short
    /// queue draining slowly is worse than a longer queue draining fast.
    #[test]
    fn deadline_escape_prefers_fastest_draining_shard_over_least_loaded() {
        let s = scheduler();
        let t = truth(2);
        let item = Arc::new(t.item(0).clone());
        let qs = queues(3, 64);
        let r = Router::new(
            RoutingMode::Affinity(AffinityConfig {
                top_k: 2,
                spill_lag: 0,
            }),
            3,
        );
        let home = route_via(&r, &s, &item, &qs, None).shard;
        // Every shard misses the 1 ms deadline, with distinct estimated
        // waits; the least-loaded shard (1 request) drains slowest.
        let (fast, slow) = {
            let mut others = (0..3).filter(|&i| i != home);
            (others.next().unwrap(), others.next().unwrap())
        };
        for _ in 0..4 {
            qs[home].push(crate::queue::Request::new(Arc::clone(&item), 0));
        }
        for _ in 0..3 {
            qs[fast].push(crate::queue::Request::new(Arc::clone(&item), 0));
        }
        qs[slow].push(crate::queue::Request::new(Arc::clone(&item), 0));
        qs[home].set_service_hint_us(500_000); // 2.0 s estimated
        qs[fast].set_service_hint_us(10_000); //  30 ms estimated
        qs[slow].set_service_hint_us(900_000); // 0.9 s estimated
        let route = route_via(&r, &s, &item, &qs, Some(1_000));
        assert_eq!(
            route.shard, fast,
            "escape must price by estimated wait, not queue length"
        );
    }

    /// The routing scan doubles as the SLO value hook: the route's value
    /// is the scheduler's top-k scan sum, under both modes.
    #[test]
    fn route_value_matches_the_scheduler_scan() {
        let s = scheduler();
        let t = truth(8);
        let qs = queues(4, 16);
        let hash = Router::new(RoutingMode::Hash, 4);
        let aff = Router::new(RoutingMode::Affinity(AffinityConfig::default()), 4);
        for item in t.items() {
            let (_, want2) = s.affinity_value_scan(item, 2);
            assert!((route_via(&hash, &s, item, &qs, None).value - want2).abs() < 1e-12);
            assert!((route_via(&aff, &s, item, &qs, None).value - want2).abs() < 1e-12);
            assert!(want2 > 0.0, "fixture items carry value");
        }
    }
}
