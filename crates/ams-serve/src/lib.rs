//! # ams-serve — sharded serving front-end
//!
//! The paper's motivating deployments (image-retrieval ingestion, album
//! indexing, surveillance) are continuous services, not batch jobs. This
//! crate turns the labeling engine into one:
//!
//! * [`completion`] — the request/response half of the client API:
//!   cancellable [`Ticket`]s, terminal [`Completion`] events (per-request
//!   labels / shed reason / cancelled), and the bounded per-client
//!   completion queue they arrive on.
//! * [`cache`] — a sharded, lock-striped, content-addressed label cache
//!   keyed by the full-content scene fingerprint: exact repeats are
//!   answered before admission with zero virtual-GPU bill, duplicates of
//!   queued or in-flight requests coalesce onto the leader and fan out
//!   when it resolves, and eviction is priced in SLO value units
//!   (value-per-byte × recency) under a bounded byte budget.
//! * [`queue`] — bounded per-shard admission queues with selectable
//!   backpressure (block / reject / shed-oldest) and per-class admission
//!   reservations; queued entries carry their ticket's completion slot so
//!   eviction notifies its victims.
//! * [`router`] — request routing: scene-id hash, or *model-affinity*
//!   routing that steers requests with matching predicted model sets onto
//!   the same shard (bigger same-model batches) with a least-loaded spill
//!   hatch.
//! * [`server`] — the [`AmsServer`]: sharded queues, a worker pool per
//!   shard over one shared
//!   [`AdaptiveModelScheduler`](ams_core::framework::AdaptiveModelScheduler),
//!   deadline-aware load shedding, batched admission into the `ams-sim`
//!   virtual GPU pool, an optional per-shard adaptive batch-limit
//!   controller (AIMD against a tail-latency target, step-bounded by the
//!   calibrated batch latency model), optional **SLO-aware admission and
//!   shedding** (per-request deadline + value classes, predicted-wait
//!   admission control, value-weighted overflow eviction, EDF dequeue,
//!   per-class ledgers), and graceful drain on shutdown.
//! * [`net`] — the TCP front-end: a blocking `std::net` listener
//!   speaking the ticket protocol over compact length-prefixed binary
//!   frames. One persistent connection multiplexes many tickets
//!   (client-chosen request ids echoed in completions), the
//!   per-connection completion window is the flow control (a full window
//!   stops socket reads, so TCP backpressure mirrors the in-process
//!   bound), disconnect cancels the connection's outstanding tickets,
//!   and the [`net::NetClient`] mirrors the in-process [`Client`] API so
//!   callers can swap transports without code changes.
//! * [`obs`] — the live observability layer: a structured lifecycle
//!   event stream (per-worker lock-free bounded rings, drop-counted on
//!   overflow, drained by a background aggregator), a time-sliced rolling
//!   metrics registry behind [`AmsServer::metrics_snapshot`] /
//!   [`AmsServer::render_metrics`], and a flight recorder that retains
//!   the complete causal trace of the last N sheds, deadline misses, and
//!   cancellations ([`AmsServer::why`]). Event totals reconcile
//!   bucket-for-bucket against the [`ServeReport`] conservation ledger
//!   ([`ServeReport::events_reconcile`]).
//! * [`telemetry`] — per-request latency histograms split into queue wait
//!   vs execute, published as p50/p95/p99 summaries.
//! * [`adapt`] — online adaptation: a background trainer taps served
//!   outcomes over a bounded experience channel, learns on them
//!   ([`ams_rl::OnlineTrainer`]), and hot-swaps updated agent weights
//!   into the predict path through a generation-counted snapshot cell —
//!   workers pin one coherent snapshot per batch with a single atomic
//!   load. With [`ServeConfig::adapt`] unset, the serving path is
//!   byte-identical to a server built without the module.
//!
//! Served statistics are *exact*: per-item labeling is deterministic and
//! every [`StreamStats`](ams_core::streaming::StreamStats) field is an
//! order-independent sum, so when no request is shed the merged
//! [`ServeReport::stats`] equal what the serial
//! [`StreamProcessor`](ams_core::streaming::StreamProcessor) produces over
//! the same items — sharding and batching change *when* work runs and what
//! it costs, never what it computes.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod adapt;
pub mod cache;
pub mod completion;
pub mod net;
pub mod obs;
pub mod queue;
pub mod router;
pub mod server;
pub mod telemetry;

pub use adapt::{AdaptConfig, AdaptReport};
pub use cache::{CacheConfig, CacheReport};
pub use completion::{Completion, LabelResult, ShedReason, Ticket};
pub use net::{ClientFrame, NetClient, NetEvent, NetServer, ServerFrame, WireError, WireRequest};
pub use obs::{
    CacheGauges, ClassRates, EventCount, EventKind, EventRecord, MetricsSnapshot, ObsConfig,
    ObsReport, ShardGauges, SliceSnapshot, TraceReport,
};
pub use queue::{BackpressurePolicy, ClassShed, Request, ShardQueue, SubmitOutcome};
pub use router::{fib_shard, AffinityConfig, Route, Router, RoutingMode};
pub use server::{
    AdaptiveBatchConfig, AdaptiveReport, AmsServer, ClassReport, Client, ServeConfig, ServeReport,
    ShardAdaptive, SloClass, SloConfig, SloReport, SubmitOptions,
};
pub use telemetry::{LatencyHistogram, LatencySummary};
