//! Live observability: lifecycle event stream, time-sliced metrics
//! registry, and a shed/deadline-miss flight recorder.
//!
//! Everything the server publishes elsewhere is an end-of-run aggregate —
//! [`ServeReport`](crate::server::ServeReport) only exists at drain. This
//! module makes the same accounting observable *while serving*:
//!
//! * **Lifecycle event stream** — every request emits typed [`Event`]s
//!   (admitted, cache-hit, coalesced, enqueued, spilled, batched,
//!   executed, labeled, shed-with-reason, cancelled, ghost-executed)
//!   stamped with a microsecond clock and correlation ids. Events are
//!   recorded through bounded lock-free MPMC rings — one per worker plus
//!   one per shard for the submit side — so the hot path never takes a
//!   lock and never blocks: when a ring is full the event is *dropped and
//!   counted* per kind, keeping totals honest.
//! * **Time-sliced metrics registry** — a background aggregator thread
//!   drains the rings into rolling time slices plus cumulative per-kind
//!   and per-class totals and a live total-latency histogram. Snapshots
//!   are served live via [`MetricsSnapshot`] (serde) and a
//!   Prometheus-style text exposition, and the final snapshot is folded
//!   into the drain report as [`ObsReport`].
//! * **Flight recorder** — the complete causal event trace of the last N
//!   "interesting" requests (every shed path, deadline-missed labels,
//!   cancellations and their ghost executions) retained in a bounded
//!   ring, with a [`why`](ObsReport::why)-style dump for post-mortems.
//!
//! The stream is gated like everything else in this repo: per-kind event
//! totals (drained + dropped) must reconcile bucket-for-bucket with the
//! `ServeReport` conservation ledger
//! (`ServeReport::events_reconcile`), and the measured obs-on vs obs-off
//! capacity cost is bounded at ≤2% in `bench_serve`.

use crate::completion::ShedReason;
use crate::telemetry::LatencyHistogram;
use serde::{Deserialize, Serialize};
use std::cell::UnsafeCell;
use std::collections::{HashMap, VecDeque};
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Sentinel for events not tied to a completion ticket (fire-and-forget).
pub const NO_TICKET: u64 = u64::MAX;
/// Sentinel for events emitted before (or without) a shard placement.
pub const NO_SHARD: u32 = u32::MAX;

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Tuning for the observability pipeline. `ServeConfig::obs: None` (the
/// default) disables the whole layer — no rings, no aggregator thread,
/// and a branch-on-`None` as the only hot-path residue.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsConfig {
    /// Slots per event ring (rounded up to a power of two, min 8). One
    /// ring per worker plus one per shard for the submit side.
    pub ring_capacity: usize,
    /// Aggregator wake period. Rings are also drained opportunistically
    /// whenever a snapshot is taken.
    pub drain_interval_ms: u64,
    /// Width of one rolling metrics time slice.
    pub slice_ms: u64,
    /// Retained rolling slices (older slices fall off the window).
    pub slices: usize,
    /// Retained "interesting" flight-recorder traces (sheds, deadline
    /// misses, cancellations).
    pub recorder_capacity: usize,
    /// In-flight traces tracked concurrently; beyond this the oldest
    /// unfinished trace is evicted (bounds memory under event drops).
    pub active_traces: usize,
    /// Events retained per trace; further events are counted, not kept.
    pub trace_events: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            ring_capacity: 8192,
            drain_interval_ms: 5,
            slice_ms: 250,
            slices: 16,
            recorder_capacity: 32,
            active_traces: 4096,
            trace_events: 32,
        }
    }
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// Number of [`EventKind`] variants (array-indexed counters).
pub const KIND_COUNT: usize = 16;

/// A lifecycle event type. The nine *terminal* kinds map one-to-one onto
/// the `ServeReport` conservation buckets; the rest are causal markers
/// for traces and rate metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// Request entered the submission path (counts against `offered`).
    Admitted = 0,
    /// Answered from the label cache before admission (terminal).
    CacheHit = 1,
    /// Follower delivered from a leader's in-flight execution (terminal;
    /// emitted at fan-out, not at submit, so it lands in the same bucket
    /// the ledger settles on).
    Coalesced = 2,
    /// Placed on a shard queue.
    Enqueued = 3,
    /// Affinity routing diverted the request off its home shard.
    Spilled = 4,
    /// Entered an execution batch (`detail` = batch size).
    Batched = 5,
    /// Batch execution finished for this request (`detail` = exec µs).
    Executed = 6,
    /// Labels delivered (terminal; `detail` = total latency µs, `flag` =
    /// deadline missed).
    Labeled = 7,
    /// Shed by SLO admission control (terminal).
    ShedAdmission = 8,
    /// Shed by queue overflow / value-weighted eviction (terminal).
    ShedOverflow = 9,
    /// Shed at dequeue because the deadline had already passed (terminal).
    ShedDeadline = 10,
    /// Shed by abort-path drain (terminal; never appears in a graceful
    /// drain report).
    ShedDrain = 11,
    /// Refused at admission by the reject backpressure policy (terminal).
    Rejected = 12,
    /// Client cancelled the ticket first (terminal).
    Cancelled = 13,
    /// A cancelled leader was executed anyway for its cache followers.
    GhostExecuted = 14,
    /// The online adaptation trainer published a new weight generation
    /// into the predict path (`detail` = generation). Not tied to any
    /// request (`req` is a sentinel) and never terminal.
    WeightsSwapped = 15,
}

impl EventKind {
    /// All kinds, in counter-index order.
    pub const ALL: [EventKind; KIND_COUNT] = [
        EventKind::Admitted,
        EventKind::CacheHit,
        EventKind::Coalesced,
        EventKind::Enqueued,
        EventKind::Spilled,
        EventKind::Batched,
        EventKind::Executed,
        EventKind::Labeled,
        EventKind::ShedAdmission,
        EventKind::ShedOverflow,
        EventKind::ShedDeadline,
        EventKind::ShedDrain,
        EventKind::Rejected,
        EventKind::Cancelled,
        EventKind::GhostExecuted,
        EventKind::WeightsSwapped,
    ];

    /// Stable snake_case name (metric label / JSON value).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Admitted => "admitted",
            EventKind::CacheHit => "cache_hit",
            EventKind::Coalesced => "coalesced",
            EventKind::Enqueued => "enqueued",
            EventKind::Spilled => "spilled",
            EventKind::Batched => "batched",
            EventKind::Executed => "executed",
            EventKind::Labeled => "labeled",
            EventKind::ShedAdmission => "shed_admission",
            EventKind::ShedOverflow => "shed_overflow",
            EventKind::ShedDeadline => "shed_deadline",
            EventKind::ShedDrain => "shed_drain",
            EventKind::Rejected => "rejected",
            EventKind::Cancelled => "cancelled",
            EventKind::GhostExecuted => "ghost_executed",
            EventKind::WeightsSwapped => "weights_swapped",
        }
    }

    /// The terminal kind a [`ShedReason`] maps to.
    pub fn of_shed(reason: ShedReason) -> EventKind {
        match reason {
            ShedReason::Admission => EventKind::ShedAdmission,
            ShedReason::Overflow => EventKind::ShedOverflow,
            ShedReason::Deadline => EventKind::ShedDeadline,
            ShedReason::Drain => EventKind::ShedDrain,
        }
    }

    /// Whether this kind settles a request (exactly one per request).
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            EventKind::CacheHit
                | EventKind::Coalesced
                | EventKind::Labeled
                | EventKind::ShedAdmission
                | EventKind::ShedOverflow
                | EventKind::ShedDeadline
                | EventKind::ShedDrain
                | EventKind::Rejected
                | EventKind::Cancelled
        )
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// One lifecycle event. `Copy` so ring slots can hold it inline.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Microseconds since server start.
    pub at_us: u64,
    /// Request correlation id (the server's `offered` sequence number;
    /// unique per submission, including fire-and-forget ones).
    pub req: u64,
    /// Completion-slot (ticket) id, or [`NO_TICKET`].
    pub ticket: u64,
    /// Shard the event happened on, or [`NO_SHARD`].
    pub shard: u32,
    /// SLO class index (0 when classless).
    pub class: u32,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific payload (`Batched`: batch size, `Executed`: exec µs,
    /// `Labeled`: total latency µs).
    pub detail: u64,
    /// Kind-specific flag (`Labeled`: deadline missed).
    pub flag: bool,
}

// ---------------------------------------------------------------------------
// Lock-free bounded MPMC event ring (Vyukov queue)
// ---------------------------------------------------------------------------

struct Slot {
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<Event>>,
}

/// Bounded lock-free MPMC ring. Producers (workers / submit threads)
/// `push` without ever blocking — a full ring returns `false` and the
/// caller counts the drop. The aggregator (and concurrent snapshot
/// takers) `pop`. Sequence-stamped slots à la Vyukov: each slot carries
/// the ticket of the operation allowed to touch it next.
pub(crate) struct EventRing {
    mask: usize,
    slots: Box<[Slot]>,
    head: AtomicUsize,
    tail: AtomicUsize,
}

// SAFETY: sending an EventRing to another thread moves the whole slot
// allocation with it; no slot holds thread-affine state (raw Events are
// plain data), so ownership transfer is sound.
unsafe impl Send for EventRing {}
// SAFETY: shared `&EventRing` access is mediated by the per-slot `seq`
// acquire/release protocol below: a slot's value is only written by the
// producer that won the head CAS and only read by the consumer that won
// the tail CAS, and the winner's exclusive window is published by the
// slot's seq Release store and observed by the other side's Acquire
// load — every UnsafeCell access has a happens-before edge.
unsafe impl Sync for EventRing {}

impl EventRing {
    fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(8).next_power_of_two();
        let slots = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            mask: cap - 1,
            slots,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    // ams-lint: begin(no-panic) event ring hot path — push runs on every
    // worker iteration, pop on every aggregator drain

    /// Non-blocking enqueue. `false` means the ring was full — the event
    /// is lost and the caller must count it.
    pub(crate) fn push(&self, ev: Event) -> bool {
        // Relaxed: this load only seeds the CAS; slot ownership (the
        // part that needs ordering) travels through `seq`, not `head`.
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask]; // ams-lint: allow(no-panic) pos & mask < slots.len(), len is a power of two
                                                     // Acquire: pairs with the consumer's seq Release store in
                                                     // pop — seeing seq == pos proves the previous occupant was
                                                     // fully read out before we overwrite the slot.
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos as isize;
            if dif == 0 {
                // Relaxed on success and failure: the CAS only
                // arbitrates which producer owns the slot; payload
                // publication happens via the seq Release store below,
                // so head itself carries no data.
                match self.head.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS grants exclusive write
                        // access to this slot until the seq store below.
                        unsafe { (*slot.value.get()).write(ev) };
                        // Release: publishes the value write above to
                        // the consumer whose Acquire load sees pos + 1.
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return true;
                    }
                    Err(actual) => pos = actual,
                }
            } else if dif < 0 {
                return false; // full
            } else {
                // Relaxed: a stale head only costs another loop pass;
                // ordering is re-established by the seq Acquire above.
                pos = self.head.load(Ordering::Relaxed);
            }
        }
    }

    /// Non-blocking dequeue (aggregator side; safe under concurrent
    /// snapshot-taking consumers).
    pub(crate) fn pop(&self) -> Option<Event> {
        // Relaxed: seeds the CAS; see push — ordering rides on `seq`.
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask]; // ams-lint: allow(no-panic) pos & mask < slots.len(), len is a power of two
                                                     // Acquire: pairs with the producer's seq Release store in
                                                     // push — seeing seq == pos + 1 proves the value write is
                                                     // visible before assume_init reads it.
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos.wrapping_add(1) as isize;
            if dif == 0 {
                // Relaxed on success and failure: the CAS only
                // arbitrates which consumer drains the slot; visibility
                // of the payload was already secured by the seq Acquire
                // load above.
                match self.tail.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS grants exclusive read
                        // access; the producer's Release store made the
                        // value visible.
                        let ev = unsafe { (*slot.value.get()).assume_init() };
                        // Release: hands the emptied slot back to the
                        // producer generation `pos + cap`; pairs with
                        // push's seq Acquire load.
                        slot.seq
                            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(ev);
                    }
                    Err(actual) => pos = actual,
                }
            } else if dif < 0 {
                return None; // empty
            } else {
                // Relaxed: a stale tail only costs another loop pass;
                // ordering is re-established by the seq Acquire above.
                pos = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    // ams-lint: end(no-panic)
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Trace {
    req: u64,
    ticket: u64,
    class: u32,
    verdict: Option<EventKind>,
    deadline_missed: bool,
    truncated: u64,
    events: Vec<Event>,
}

impl Trace {
    fn to_report(&self) -> TraceReport {
        TraceReport {
            req: self.req,
            ticket: if self.ticket == NO_TICKET {
                None
            } else {
                Some(self.ticket)
            },
            class: self.class,
            verdict: match self.verdict {
                Some(EventKind::Labeled) if self.deadline_missed => "deadline_miss".to_string(),
                Some(k) => k.name().to_string(),
                None => "in_flight".to_string(),
            },
            truncated: self.truncated,
            events: self
                .events
                .iter()
                .map(|e| EventRecord {
                    at_us: e.at_us,
                    kind: e.kind.name().to_string(),
                    shard: if e.shard == NO_SHARD {
                        None
                    } else {
                        Some(e.shard)
                    },
                    detail: e.detail,
                    flag: e.flag,
                })
                .collect(),
        }
    }
}

/// Bounded map of in-flight traces plus a bounded ring of settled
/// "interesting" ones (sheds, deadline misses, cancellations — the
/// requests a post-mortem asks about).
struct FlightRecorder {
    active: HashMap<u64, Trace>,
    order: VecDeque<u64>,
    interesting: VecDeque<Trace>,
    capacity: usize,
    active_capacity: usize,
    trace_events: usize,
}

impl FlightRecorder {
    fn new(cfg: &ObsConfig) -> Self {
        Self {
            active: HashMap::new(),
            order: VecDeque::new(),
            interesting: VecDeque::new(),
            capacity: cfg.recorder_capacity.max(1),
            active_capacity: cfg.active_traces.max(1),
            trace_events: cfg.trace_events.max(4),
        }
    }

    fn observe(&mut self, ev: Event) {
        if let Some(tr) = self.active.get_mut(&ev.req) {
            Self::append(tr, ev, self.trace_events);
            if ev.kind.is_terminal() {
                let tr = self.active.remove(&ev.req).expect("trace present");
                self.order.retain(|&r| r != ev.req);
                self.settle(tr);
            }
            return;
        }
        // Late event for an already-settled request (ghost execution
        // lands after `Cancelled` retired the trace): extend in place.
        if ev.kind == EventKind::GhostExecuted || ev.kind == EventKind::Executed {
            if let Some(tr) = self.interesting.iter_mut().rev().find(|t| t.req == ev.req) {
                Self::append(tr, ev, self.trace_events);
                return;
            }
        }
        let mut tr = Trace {
            req: ev.req,
            ticket: NO_TICKET,
            class: ev.class,
            verdict: None,
            deadline_missed: false,
            truncated: 0,
            events: Vec::with_capacity(8),
        };
        Self::append(&mut tr, ev, self.trace_events);
        if ev.kind.is_terminal() {
            self.settle(tr);
            return;
        }
        if self.active.len() >= self.active_capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.active.remove(&oldest);
            }
        }
        self.order.push_back(ev.req);
        self.active.insert(ev.req, tr);
    }

    fn append(tr: &mut Trace, ev: Event, cap: usize) {
        if ev.ticket != NO_TICKET {
            tr.ticket = ev.ticket;
        }
        if ev.kind.is_terminal() {
            tr.verdict = Some(ev.kind);
            if ev.kind == EventKind::Labeled {
                tr.deadline_missed = ev.flag;
            }
        }
        if tr.events.len() < cap {
            tr.events.push(ev);
        } else {
            tr.truncated += 1;
        }
    }

    fn settle(&mut self, tr: Trace) {
        let interesting = match tr.verdict {
            Some(EventKind::Labeled) => tr.deadline_missed,
            Some(
                EventKind::ShedAdmission
                | EventKind::ShedOverflow
                | EventKind::ShedDeadline
                | EventKind::ShedDrain
                | EventKind::Rejected
                | EventKind::Cancelled,
            ) => true,
            _ => false,
        };
        if !interesting {
            return;
        }
        if self.interesting.len() >= self.capacity {
            self.interesting.pop_front();
        }
        self.interesting.push_back(tr);
    }

    fn traces(&self) -> Vec<TraceReport> {
        self.interesting.iter().map(Trace::to_report).collect()
    }

    fn why(&self, id: u64) -> Option<TraceReport> {
        self.interesting
            .iter()
            .rev()
            .find(|t| t.ticket == id || t.req == id)
            .map(Trace::to_report)
    }
}

// ---------------------------------------------------------------------------
// Registry (aggregator state)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Default)]
struct ClassObs {
    admitted: u64,
    labeled: u64,
    deadline_met: u64,
    cache_hit: u64,
    coalesced: u64,
    shed: u64,
    rejected: u64,
    cancelled: u64,
}

#[derive(Debug, Clone)]
struct SliceBucket {
    index: u64,
    counts: [u64; KIND_COUNT],
    batch_limit: Vec<u64>,
    batch_fill: Vec<f64>,
}

struct Registry {
    totals: [u64; KIND_COUNT],
    by_class: Vec<ClassObs>,
    latency: LatencyHistogram,
    slices: VecDeque<SliceBucket>,
    recorder: FlightRecorder,
    // per-shard cumulative (batches, fill) at the last slice sample, for
    // per-slice batch-fill deltas
    fill_mark: Vec<(u64, u64)>,
}

impl Registry {
    fn new(cfg: &ObsConfig, shards: usize) -> Self {
        Self {
            totals: [0; KIND_COUNT],
            by_class: Vec::new(),
            latency: LatencyHistogram::default(),
            slices: VecDeque::new(),
            recorder: FlightRecorder::new(cfg),
            fill_mark: vec![(0, 0); shards],
        }
    }

    fn class_mut(&mut self, class: u32) -> &mut ClassObs {
        let idx = class as usize;
        if self.by_class.len() <= idx {
            self.by_class.resize_with(idx + 1, ClassObs::default);
        }
        &mut self.by_class[idx]
    }

    fn slice_mut(&mut self, index: u64, max_slices: usize) -> &mut SliceBucket {
        let fresh = |index| SliceBucket {
            index,
            counts: [0; KIND_COUNT],
            batch_limit: Vec::new(),
            batch_fill: Vec::new(),
        };
        match self.slices.back() {
            Some(last) if last.index == index => {}
            Some(last) if last.index < index => {
                self.slices.push_back(fresh(index));
                while self.slices.len() > max_slices.max(1) {
                    self.slices.pop_front();
                }
            }
            Some(_) => {
                // Late event for an already-rotated slice: fold into the
                // oldest retained bucket rather than resurrecting it.
                let pos = self
                    .slices
                    .iter()
                    .position(|s| s.index >= index)
                    .unwrap_or(0);
                return &mut self.slices[pos];
            }
            None => self.slices.push_back(fresh(index)),
        }
        self.slices.back_mut().expect("slice present")
    }

    fn ingest(&mut self, ev: Event, slice_us: u64, max_slices: usize) {
        self.totals[ev.kind.index()] += 1;
        let c = self.class_mut(ev.class);
        match ev.kind {
            EventKind::Admitted => c.admitted += 1,
            EventKind::Labeled => {
                c.labeled += 1;
                if !ev.flag {
                    c.deadline_met += 1;
                }
            }
            EventKind::CacheHit => c.cache_hit += 1,
            EventKind::Coalesced => c.coalesced += 1,
            EventKind::ShedAdmission
            | EventKind::ShedOverflow
            | EventKind::ShedDeadline
            | EventKind::ShedDrain => c.shed += 1,
            EventKind::Rejected => c.rejected += 1,
            EventKind::Cancelled => c.cancelled += 1,
            _ => {}
        }
        if ev.kind == EventKind::Labeled {
            self.latency.record_us(ev.detail);
        }
        let idx = ev.at_us / slice_us.max(1);
        self.slice_mut(idx, max_slices).counts[ev.kind.index()] += 1;
        // Swap events carry no request id — feeding their sentinel `req`
        // to the recorder would open a trace that can never settle.
        if ev.kind != EventKind::WeightsSwapped {
            self.recorder.observe(ev);
        }
    }
}

// ---------------------------------------------------------------------------
// The server-side handle
// ---------------------------------------------------------------------------

/// Per-shard gauge inputs sampled by the server at snapshot time (queue
/// state and AIMD limit live outside this module).
pub(crate) struct ShardSample {
    pub depth: u64,
    pub service_hint_us: u64,
    pub estimated_wait_us: u64,
    pub batch_limit: u64,
}

/// The live observability pipeline: rings, hot-path gauges, and the
/// aggregator-owned registry. One per server, shared by every worker,
/// queue, cache, and completion slot via `Arc`.
pub(crate) struct ServerObs {
    cfg: ObsConfig,
    start: Instant,
    shards: usize,
    workers_per_shard: usize,
    rings: Vec<EventRing>,
    dropped: Vec<AtomicU64>,
    executing: Vec<AtomicU64>,
    busy_us: Vec<AtomicU64>,
    batches: Vec<AtomicU64>,
    batch_fill: Vec<AtomicU64>,
    tickets_issued: AtomicU64,
    tickets_resolved: AtomicU64,
    registry: Mutex<Registry>,
    stop: AtomicBool,
}

impl std::fmt::Debug for ServerObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerObs")
            .field("shards", &self.shards)
            .field("workers_per_shard", &self.workers_per_shard)
            .field("rings", &self.rings.len())
            .finish_non_exhaustive()
    }
}

impl ServerObs {
    pub(crate) fn new(cfg: ObsConfig, shards: usize, workers_per_shard: usize) -> Self {
        let shards = shards.max(1);
        let workers_per_shard = workers_per_shard.max(1);
        let rings = (0..shards + shards * workers_per_shard)
            .map(|_| EventRing::with_capacity(cfg.ring_capacity))
            .collect();
        Self {
            registry: Mutex::new(Registry::new(&cfg, shards)),
            cfg,
            start: Instant::now(),
            shards,
            workers_per_shard,
            rings,
            dropped: (0..KIND_COUNT).map(|_| AtomicU64::new(0)).collect(),
            executing: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            busy_us: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            batches: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            batch_fill: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            tickets_issued: AtomicU64::new(0),
            tickets_resolved: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        }
    }

    /// Microseconds since server start (the event clock).
    pub(crate) fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    // ams-lint: begin(no-panic) emit paths — called from every submit and
    // every worker iteration; an event must never be able to kill a worker

    /// Record an event from a submit-side thread (ring keyed by request
    /// id so concurrent clients spread across shard rings).
    pub(crate) fn emit(&self, ev: Event) {
        let ring = &self.rings[(ev.req as usize) % self.shards]; // ams-lint: allow(no-panic) index is % shards and rings.len() >= shards
        if !ring.push(ev) {
            self.dropped[ev.kind.index()].fetch_add(1, Ordering::Relaxed); // ams-lint: allow(no-panic) kind.index() < EventKind::ALL.len() == dropped.len()
        }
    }

    /// Record an event from worker `worker` (its private ring: no
    /// cross-worker contention on the hot path).
    pub(crate) fn emit_worker(&self, worker: usize, ev: Event) {
        let ring = &self.rings[self.shards + worker % (self.shards * self.workers_per_shard)]; // ams-lint: allow(no-panic) rings.len() == shards + shards * workers_per_shard
        if !ring.push(ev) {
            self.dropped[ev.kind.index()].fetch_add(1, Ordering::Relaxed); // ams-lint: allow(no-panic) kind.index() < EventKind::ALL.len() == dropped.len()
        }
    }

    // ams-lint: end(no-panic)

    pub(crate) fn ticket_issued(&self) {
        self.tickets_issued.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn ticket_resolved(&self) {
        self.tickets_resolved.fetch_add(1, Ordering::Relaxed);
    }

    /// Worker bookkeeping around one batch execution.
    pub(crate) fn batch_started(&self, shard: usize, size: usize) {
        self.executing[shard].fetch_add(size as u64, Ordering::Relaxed);
    }

    pub(crate) fn batch_finished(&self, shard: usize, size: usize, exec_us: u64) {
        self.executing[shard].fetch_sub(size as u64, Ordering::Relaxed);
        self.busy_us[shard].fetch_add(exec_us, Ordering::Relaxed);
        self.batches[shard].fetch_add(1, Ordering::Relaxed);
        self.batch_fill[shard].fetch_add(size as u64, Ordering::Relaxed);
    }

    pub(crate) fn request_stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    pub(crate) fn stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    pub(crate) fn drain_interval_ms(&self) -> u64 {
        self.cfg.drain_interval_ms.max(1)
    }

    /// Drain every ring into the registry and stamp the current slice's
    /// gauge samples. Called by the aggregator on its interval, by
    /// snapshot takers, and one final time at shutdown.
    pub(crate) fn drain(&self, shard_limits: &[u64]) {
        let slice_us = self.cfg.slice_ms.max(1) * 1000;
        let max_slices = self.cfg.slices;
        let mut reg = self.registry.lock().expect("obs registry poisoned");
        for ring in &self.rings {
            while let Some(ev) = ring.pop() {
                reg.ingest(ev, slice_us, max_slices);
            }
        }
        // Stamp AIMD-limit / batch-fill trajectory samples onto the slice
        // the clock is currently in.
        let idx = self.now_us() / slice_us;
        let mut fills = Vec::with_capacity(self.shards);
        let mut marks = Vec::with_capacity(self.shards);
        for s in 0..self.shards {
            let batches = self.batches[s].load(Ordering::Relaxed);
            let fill = self.batch_fill[s].load(Ordering::Relaxed);
            let (b0, f0) = reg.fill_mark[s];
            let db = batches.saturating_sub(b0);
            fills.push(if db == 0 {
                0.0
            } else {
                fill.saturating_sub(f0) as f64 / db as f64
            });
            marks.push((batches, fill));
        }
        let slice = reg.slice_mut(idx, max_slices);
        slice.batch_limit = shard_limits.to_vec();
        slice.batch_fill = fills;
        if slice.index == idx {
            reg.fill_mark = marks;
        }
    }

    /// Build a live snapshot. Drains first so the numbers are current.
    pub(crate) fn snapshot(
        &self,
        shards: &[ShardSample],
        cache: Option<CacheGauges>,
        adapt_generation: Option<u64>,
    ) -> MetricsSnapshot {
        let limits: Vec<u64> = shards.iter().map(|s| s.batch_limit).collect();
        self.drain(&limits);
        let uptime_us = self.now_us().max(1);
        let reg = self.registry.lock().expect("obs registry poisoned");
        let events: Vec<EventCount> = EventKind::ALL
            .iter()
            .map(|&k| EventCount {
                kind: k.name().to_string(),
                count: reg.totals[k.index()],
                dropped: self.dropped[k.index()].load(Ordering::Relaxed),
            })
            .collect();
        let total =
            |k: EventKind| reg.totals[k.index()] + self.dropped[k.index()].load(Ordering::Relaxed);
        let settled: u64 = EventKind::ALL
            .iter()
            .filter(|k| k.is_terminal())
            .map(|&k| total(k))
            .sum();
        let in_flight = total(EventKind::Admitted).saturating_sub(settled);
        let issued = self.tickets_issued.load(Ordering::Relaxed);
        let resolved = self.tickets_resolved.load(Ordering::Relaxed);
        let shard_gauges = shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let busy = self.busy_us[i].load(Ordering::Relaxed);
                let denom = uptime_us
                    .saturating_mul(self.workers_per_shard as u64)
                    .max(1);
                let batches = self.batches[i].load(Ordering::Relaxed);
                let fill = self.batch_fill[i].load(Ordering::Relaxed);
                ShardGauges {
                    shard: i as u32,
                    depth: s.depth,
                    service_hint_us: s.service_hint_us,
                    estimated_wait_us: s.estimated_wait_us,
                    executing: self.executing[i].load(Ordering::Relaxed),
                    busy_fraction: (busy as f64 / denom as f64).min(1.0),
                    batch_limit: s.batch_limit,
                    mean_batch_fill: if batches == 0 {
                        0.0
                    } else {
                        fill as f64 / batches as f64
                    },
                }
            })
            .collect();
        let classes = reg
            .by_class
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let settled =
                    c.labeled + c.cache_hit + c.coalesced + c.shed + c.rejected + c.cancelled;
                ClassRates {
                    class: i as u32,
                    admitted: c.admitted,
                    labeled: c.labeled,
                    cache_hit: c.cache_hit,
                    coalesced: c.coalesced,
                    shed: c.shed,
                    rejected: c.rejected,
                    cancelled: c.cancelled,
                    deadline_met_rate: if c.labeled == 0 {
                        0.0
                    } else {
                        c.deadline_met as f64 / c.labeled as f64
                    },
                    shed_rate: if settled == 0 {
                        0.0
                    } else {
                        c.shed as f64 / settled as f64
                    },
                }
            })
            .collect();
        let slice_us = self.cfg.slice_ms.max(1) * 1000;
        let slices = reg
            .slices
            .iter()
            .map(|s| SliceSnapshot {
                index: s.index,
                start_us: s.index * slice_us,
                counts: s.counts.to_vec(),
                batch_limit: s.batch_limit.clone(),
                mean_batch_fill: s.batch_fill.clone(),
            })
            .collect();
        MetricsSnapshot {
            uptime_us,
            events,
            dropped_total: self.dropped.iter().map(|d| d.load(Ordering::Relaxed)).sum(),
            in_flight,
            outstanding_tickets: issued.saturating_sub(resolved),
            tickets_issued: issued,
            shards: shard_gauges,
            classes,
            cache,
            adapt_generation,
            latency: reg.latency.clone(),
            slices,
        }
    }

    /// Final fold at drain: snapshot plus the recorder's retained traces.
    pub(crate) fn report(
        &self,
        shards: &[ShardSample],
        cache: Option<CacheGauges>,
        adapt_generation: Option<u64>,
    ) -> ObsReport {
        let snapshot = self.snapshot(shards, cache, adapt_generation);
        let reg = self.registry.lock().expect("obs registry poisoned");
        ObsReport {
            snapshot,
            traces: reg.recorder.traces(),
        }
    }

    /// Post-mortem dump for a settled interesting request, by ticket or
    /// request id.
    pub(crate) fn why(&self, id: u64) -> Option<TraceReport> {
        let reg = self.registry.lock().expect("obs registry poisoned");
        reg.recorder.why(id)
    }
}

// ---------------------------------------------------------------------------
// Snapshot / report types (serde-visible)
// ---------------------------------------------------------------------------

/// Per-kind event totals: `count` drained into the registry, `dropped`
/// lost to ring overflow (counted at the producer). The reconciled total
/// for a kind is `count + dropped`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventCount {
    /// Kind name (see [`EventKind::name`]).
    pub kind: String,
    /// Events drained through a ring into the registry.
    pub count: u64,
    /// Events dropped on ring overflow (never block a worker).
    pub dropped: u64,
}

/// Live per-shard gauges, sampled at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardGauges {
    /// Shard index.
    pub shard: u32,
    /// Queued requests right now (the `estimated_wait_us` depth input).
    pub depth: u64,
    /// Published per-request drain hint (µs) — the other wait input.
    pub service_hint_us: u64,
    /// `depth × service_hint_us`: exactly what `Router::route` prices
    /// when it weighs a deadline against this shard.
    pub estimated_wait_us: u64,
    /// Requests inside an executing batch right now.
    pub executing: u64,
    /// Fraction of worker wall time spent executing batches.
    pub busy_fraction: f64,
    /// Current AIMD `max_batch` limit (static limit when non-adaptive).
    pub batch_limit: u64,
    /// Mean realized batch size since start.
    pub mean_batch_fill: f64,
}

/// Cumulative per-class counters with derived rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassRates {
    /// SLO class index.
    pub class: u32,
    /// Requests admitted into the pipeline.
    pub admitted: u64,
    /// Requests labeled (own execution).
    pub labeled: u64,
    /// Requests answered by the cache before admission.
    pub cache_hit: u64,
    /// Requests delivered by leader fan-out.
    pub coalesced: u64,
    /// Requests shed (all reasons).
    pub shed: u64,
    /// Requests refused by the reject policy.
    pub rejected: u64,
    /// Requests cancelled by their client.
    pub cancelled: u64,
    /// Of labeled requests, the fraction that met their deadline.
    pub deadline_met_rate: f64,
    /// Of settled requests, the fraction shed.
    pub shed_rate: f64,
}

/// Label-cache occupancy gauges (present when the cache is enabled).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheGauges {
    /// Resident entries.
    pub entries: u64,
    /// Resident bytes.
    pub bytes: u64,
    /// Configured byte budget.
    pub capacity_bytes: u64,
    /// `(cache_hit + coalesced) / admitted` so far.
    pub hit_rate: f64,
}

/// One rolling time slice of the event stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SliceSnapshot {
    /// Slice sequence number since server start.
    pub index: u64,
    /// Slice start, µs since server start.
    pub start_us: u64,
    /// Per-kind event counts in this slice, ordered as
    /// [`EventKind::ALL`].
    pub counts: Vec<u64>,
    /// Per-shard AIMD `max_batch` sampled while this slice was current.
    pub batch_limit: Vec<u64>,
    /// Per-shard mean realized batch size over this slice.
    pub mean_batch_fill: Vec<f64>,
}

/// A live view of the server: event totals, gauges, per-class rates, the
/// rolling slice window, and the full-resolution latency histogram.
/// Serializable via the workspace serde stand-in (`serde_json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Microseconds since server start.
    pub uptime_us: u64,
    /// Per-kind totals (drained + dropped), ordered as [`EventKind::ALL`].
    pub events: Vec<EventCount>,
    /// Total events lost to ring overflow, all kinds.
    pub dropped_total: u64,
    /// Admitted requests not yet settled by a terminal event.
    pub in_flight: u64,
    /// Tickets issued and not yet resolved (exact, counter-based).
    pub outstanding_tickets: u64,
    /// Tickets issued since start.
    pub tickets_issued: u64,
    /// Per-shard live gauges.
    pub shards: Vec<ShardGauges>,
    /// Per-class counters and rates.
    pub classes: Vec<ClassRates>,
    /// Cache occupancy, when the label cache is enabled.
    pub cache: Option<CacheGauges>,
    /// Current weight generation in the predict path, when online
    /// adaptation is enabled (0 = still serving the boot weights).
    pub adapt_generation: Option<u64>,
    /// Total-latency histogram over labeled requests (full bucket
    /// resolution — arbitrary quantiles can be computed client-side).
    pub latency: LatencyHistogram,
    /// Rolling time slices, oldest first.
    pub slices: Vec<SliceSnapshot>,
}

impl MetricsSnapshot {
    /// Reconciled total (drained + dropped) for one event kind.
    pub fn total(&self, kind: EventKind) -> u64 {
        self.events
            .iter()
            .find(|e| e.kind == kind.name())
            .map(|e| e.count + e.dropped)
            .unwrap_or(0)
    }

    /// Prometheus text exposition of this snapshot.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        fn counter(out: &mut String, name: &str, help: &str, lines: &[(String, f64)]) {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
            for (labels, v) in lines {
                out.push_str(&format!("{name}{labels} {v}\n"));
            }
        }
        counter(
            &mut out,
            "ams_events_total",
            "Lifecycle events drained into the registry, by kind.",
            &self
                .events
                .iter()
                .map(|e| (format!("{{kind=\"{}\"}}", e.kind), e.count as f64))
                .collect::<Vec<_>>(),
        );
        counter(
            &mut out,
            "ams_events_dropped_total",
            "Lifecycle events dropped on ring overflow, by kind.",
            &self
                .events
                .iter()
                .map(|e| (format!("{{kind=\"{}\"}}", e.kind), e.dropped as f64))
                .collect::<Vec<_>>(),
        );
        counter(
            &mut out,
            "ams_tickets_issued_total",
            "Completion tickets issued.",
            &[(String::new(), self.tickets_issued as f64)],
        );
        fn gauge(out: &mut String, name: &str, help: &str, lines: &[(String, f64)]) {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n"));
            for (labels, v) in lines {
                out.push_str(&format!("{name}{labels} {v}\n"));
            }
        }
        gauge(
            &mut out,
            "ams_in_flight",
            "Admitted requests not yet settled.",
            &[(String::new(), self.in_flight as f64)],
        );
        gauge(
            &mut out,
            "ams_outstanding_tickets",
            "Tickets issued and not yet resolved.",
            &[(String::new(), self.outstanding_tickets as f64)],
        );
        let shard_gauge = |f: &dyn Fn(&ShardGauges) -> f64| {
            self.shards
                .iter()
                .map(|s| (format!("{{shard=\"{}\"}}", s.shard), f(s)))
                .collect::<Vec<_>>()
        };
        gauge(
            &mut out,
            "ams_shard_queue_depth",
            "Queued requests per shard.",
            &shard_gauge(&|s| s.depth as f64),
        );
        gauge(
            &mut out,
            "ams_shard_service_hint_us",
            "Published per-request drain hint per shard (microseconds).",
            &shard_gauge(&|s| s.service_hint_us as f64),
        );
        gauge(
            &mut out,
            "ams_shard_estimated_wait_us",
            "depth * service_hint: the wait Router::route prices (microseconds).",
            &shard_gauge(&|s| s.estimated_wait_us as f64),
        );
        gauge(
            &mut out,
            "ams_shard_executing",
            "Requests inside an executing batch per shard.",
            &shard_gauge(&|s| s.executing as f64),
        );
        gauge(
            &mut out,
            "ams_shard_busy_fraction",
            "Fraction of worker wall time spent executing.",
            &shard_gauge(&|s| s.busy_fraction),
        );
        gauge(
            &mut out,
            "ams_shard_batch_limit",
            "Current (AIMD) max_batch per shard.",
            &shard_gauge(&|s| s.batch_limit as f64),
        );
        gauge(
            &mut out,
            "ams_shard_mean_batch_fill",
            "Mean realized batch size per shard.",
            &shard_gauge(&|s| s.mean_batch_fill),
        );
        let class_lines = |f: &dyn Fn(&ClassRates) -> f64| {
            self.classes
                .iter()
                .map(|c| (format!("{{class=\"{}\"}}", c.class), f(c)))
                .collect::<Vec<_>>()
        };
        if !self.classes.is_empty() {
            counter(
                &mut out,
                "ams_class_admitted_total",
                "Admitted requests per SLO class.",
                &class_lines(&|c| c.admitted as f64),
            );
            counter(
                &mut out,
                "ams_class_labeled_total",
                "Labeled requests per SLO class.",
                &class_lines(&|c| c.labeled as f64),
            );
            counter(
                &mut out,
                "ams_class_shed_total",
                "Shed requests per SLO class (all reasons).",
                &class_lines(&|c| c.shed as f64),
            );
            gauge(
                &mut out,
                "ams_class_deadline_met_rate",
                "Fraction of labeled requests that met their deadline.",
                &class_lines(&|c| c.deadline_met_rate),
            );
            gauge(
                &mut out,
                "ams_class_shed_rate",
                "Fraction of settled requests shed.",
                &class_lines(&|c| c.shed_rate),
            );
        }
        if let Some(g) = self.adapt_generation {
            gauge(
                &mut out,
                "ams_adapt_generation",
                "Weight generation currently serving predictions.",
                &[(String::new(), g as f64)],
            );
        }
        if let Some(c) = &self.cache {
            gauge(
                &mut out,
                "ams_cache_entries",
                "Resident label-cache entries.",
                &[(String::new(), c.entries as f64)],
            );
            gauge(
                &mut out,
                "ams_cache_bytes",
                "Resident label-cache bytes.",
                &[(String::new(), c.bytes as f64)],
            );
            gauge(
                &mut out,
                "ams_cache_hit_rate",
                "(cache_hit + coalesced) / admitted.",
                &[(String::new(), c.hit_rate)],
            );
        }
        out.push_str(
            "# HELP ams_latency_us Total request latency quantiles (microseconds).\n\
             # TYPE ams_latency_us summary\n",
        );
        for q in [0.5, 0.95, 0.99] {
            out.push_str(&format!(
                "ams_latency_us{{quantile=\"{q}\"}} {}\n",
                self.latency.quantile_us(q)
            ));
        }
        out.push_str(&format!("ams_latency_us_sum {}\n", self.latency.sum_us()));
        out.push_str(&format!("ams_latency_us_count {}\n", self.latency.count()));
        out
    }
}

/// One recorded event inside a [`TraceReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Microseconds since server start.
    pub at_us: u64,
    /// Kind name.
    pub kind: String,
    /// Shard, when placed.
    pub shard: Option<u32>,
    /// Kind-specific payload.
    pub detail: u64,
    /// Kind-specific flag.
    pub flag: bool,
}

/// The flight recorder's causal trace of one interesting request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceReport {
    /// Request correlation id.
    pub req: u64,
    /// Completion-ticket id, when the request had one.
    pub ticket: Option<u64>,
    /// SLO class index.
    pub class: u32,
    /// How the request settled: a terminal kind name, or
    /// `"deadline_miss"` for labels past deadline.
    pub verdict: String,
    /// Events beyond the per-trace cap (counted, not retained).
    pub truncated: u64,
    /// The retained causal event sequence, in arrival order.
    pub events: Vec<EventRecord>,
}

impl TraceReport {
    /// Human-readable multi-line dump ("why did this request miss?").
    pub fn dump(&self) -> String {
        let mut out = format!(
            "req {} ticket {} class {} -> {}\n",
            self.req,
            self.ticket
                .map(|t| t.to_string())
                .unwrap_or_else(|| "-".to_string()),
            self.class,
            self.verdict
        );
        for e in &self.events {
            out.push_str(&format!(
                "  +{:>9}us {:<14} shard {:<4} detail {}{}\n",
                e.at_us,
                e.kind,
                e.shard.map(|s| s.to_string()).unwrap_or_else(|| "-".into()),
                e.detail,
                if e.flag { " [flag]" } else { "" }
            ));
        }
        if self.truncated > 0 {
            out.push_str(&format!(
                "  ... {} further events truncated\n",
                self.truncated
            ));
        }
        out
    }
}

/// The observability fold of a drain report: the final snapshot plus the
/// flight recorder's retained traces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsReport {
    /// The final metrics snapshot, taken after workers drained.
    pub snapshot: MetricsSnapshot,
    /// Interesting traces retained by the flight recorder, oldest first.
    pub traces: Vec<TraceReport>,
}

impl ObsReport {
    /// Reconciled total (drained + dropped) for one event kind.
    pub fn total(&self, kind: EventKind) -> u64 {
        self.snapshot.total(kind)
    }

    /// Find a retained trace by ticket or request id.
    pub fn why(&self, id: u64) -> Option<&TraceReport> {
        self.traces
            .iter()
            .rev()
            .find(|t| t.ticket == Some(id) || t.req == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn ev(kind: EventKind, req: u64) -> Event {
        Event {
            at_us: 0,
            req,
            ticket: NO_TICKET,
            shard: NO_SHARD,
            class: 0,
            kind,
            detail: 0,
            flag: false,
        }
    }

    #[test]
    fn ring_is_fifo_and_bounded() {
        let r = EventRing::with_capacity(8);
        for i in 0..8 {
            assert!(r.push(ev(EventKind::Admitted, i)));
        }
        assert!(!r.push(ev(EventKind::Admitted, 99)), "ninth push must fail");
        for i in 0..8 {
            assert_eq!(r.pop().expect("event").req, i);
        }
        assert!(r.pop().is_none());
        // Wrap-around keeps working.
        for i in 100..104 {
            assert!(r.push(ev(EventKind::Labeled, i)));
        }
        assert_eq!(r.pop().expect("event").req, 100);
    }

    #[test]
    fn ring_survives_concurrent_producers() {
        let r = Arc::new(EventRing::with_capacity(1024));
        let producers: Vec<_> = (0..4)
            .map(|t| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        while !r.push(ev(EventKind::Admitted, t * 1000 + i)) {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        let consumer = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                while seen.len() < 800 {
                    if let Some(e) = r.pop() {
                        seen.push(e.req);
                    } else {
                        std::thread::yield_now();
                    }
                }
                seen
            })
        };
        for p in producers {
            p.join().expect("producer");
        }
        let mut seen = consumer.join().expect("consumer");
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 800, "every pushed event seen exactly once");
    }

    #[test]
    fn drops_are_counted_per_kind_and_totals_stay_honest() {
        let obs = ServerObs::new(
            ObsConfig {
                ring_capacity: 8,
                ..ObsConfig::default()
            },
            1,
            1,
        );
        for i in 0..50 {
            let mut e = ev(EventKind::Admitted, i);
            e.at_us = obs.now_us();
            obs.emit(e);
        }
        let snap = obs.snapshot(
            &[ShardSample {
                depth: 0,
                service_hint_us: 0,
                estimated_wait_us: 0,
                batch_limit: 4,
            }],
            None,
            None,
        );
        assert_eq!(snap.total(EventKind::Admitted), 50);
        assert!(snap.dropped_total > 0, "tiny ring must have overflowed");
        let admitted = snap
            .events
            .iter()
            .find(|e| e.kind == "admitted")
            .expect("admitted family");
        assert_eq!(admitted.count + admitted.dropped, 50);
    }

    #[test]
    fn recorder_keeps_interesting_traces_and_answers_why() {
        let mut rec = FlightRecorder::new(&ObsConfig::default());
        // A clean labeled request is not retained.
        rec.observe(ev(EventKind::Admitted, 1));
        rec.observe(ev(EventKind::Labeled, 1));
        assert!(rec.why(1).is_none());
        // A deadline miss is.
        rec.observe(ev(EventKind::Admitted, 2));
        let mut labeled = ev(EventKind::Labeled, 2);
        labeled.flag = true;
        labeled.ticket = 77;
        rec.observe(labeled);
        let tr = rec.why(77).expect("trace by ticket id");
        assert_eq!(tr.verdict, "deadline_miss");
        assert_eq!(tr.req, 2);
        assert_eq!(rec.why(2).expect("trace by req id").ticket, Some(77));
        // Ghost execution after cancellation extends the settled trace.
        rec.observe(ev(EventKind::Admitted, 3));
        let mut cancelled = ev(EventKind::Cancelled, 3);
        cancelled.ticket = 99;
        rec.observe(cancelled);
        rec.observe(ev(EventKind::GhostExecuted, 3));
        let tr = rec.why(99).expect("cancelled trace");
        assert_eq!(tr.verdict, "cancelled");
        assert!(tr.events.iter().any(|e| e.kind == "ghost_executed"));
    }

    #[test]
    fn recorder_ring_is_bounded() {
        let mut rec = FlightRecorder::new(&ObsConfig {
            recorder_capacity: 4,
            ..ObsConfig::default()
        });
        for i in 0..20 {
            rec.observe(ev(EventKind::ShedOverflow, i));
        }
        assert_eq!(rec.traces().len(), 4);
        assert!(rec.why(19).is_some(), "newest retained");
        assert!(rec.why(0).is_none(), "oldest evicted");
    }

    #[test]
    fn slices_rotate_and_stay_bounded() {
        let cfg = ObsConfig {
            slice_ms: 1,
            slices: 3,
            ..ObsConfig::default()
        };
        let mut reg = Registry::new(&cfg, 1);
        for i in 0..10u64 {
            let mut e = ev(EventKind::Admitted, i);
            e.at_us = i * 1000; // one event per 1ms slice
            reg.ingest(e, 1000, 3);
        }
        assert_eq!(reg.slices.len(), 3);
        assert_eq!(reg.slices.back().expect("slice").index, 9);
        assert_eq!(reg.totals[EventKind::Admitted.index()], 10);
    }

    #[test]
    fn snapshot_serializes_and_renders() {
        let obs = ServerObs::new(ObsConfig::default(), 2, 1);
        let mut e = ev(EventKind::Admitted, 0);
        e.class = 1;
        obs.emit(e);
        let mut l = ev(EventKind::Labeled, 0);
        l.class = 1;
        l.detail = 1500;
        obs.emit(l);
        let samples = [
            ShardSample {
                depth: 3,
                service_hint_us: 40,
                estimated_wait_us: 120,
                batch_limit: 4,
            },
            ShardSample {
                depth: 0,
                service_hint_us: 0,
                estimated_wait_us: 0,
                batch_limit: 4,
            },
        ];
        let snap = obs.snapshot(&samples, None, Some(7));
        let json = serde_json::to_string(&snap).expect("snapshot serializes");
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("snapshot round-trips");
        assert_eq!(back, snap);
        let text = snap.render_prometheus();
        assert!(text.contains("ams_events_total{kind=\"admitted\"} 1"));
        assert!(text.contains("ams_shard_estimated_wait_us{shard=\"0\"} 120"));
        assert!(text.contains("ams_adapt_generation 7"));
        assert!(text.contains("ams_latency_us_count 1"));
    }
}
