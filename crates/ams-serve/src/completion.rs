//! Per-request completion delivery: tickets, terminal events, and the
//! bounded per-client completion queue.
//!
//! The serving front-end used to be fire-and-forget: `submit` returned a
//! bare admission outcome and the labels themselves were only visible as
//! merged statistics at `shutdown()`. This module is the request/response
//! half of the redesigned client API:
//!
//! * every accepted submission issues a [`Ticket`] — a cancellable handle
//!   tied to **exactly one** terminal [`Completion`] event;
//! * the terminal event is either [`Completion::Labeled`] (the request's
//!   own labels, chosen models, value banked, and queue-wait/execute
//!   breakdown), [`Completion::Shed`] (which loss path took it, delivered
//!   at eviction time instead of silently ledgered), or
//!   [`Completion::Cancelled`];
//! * events are delivered through a bounded per-client
//!   [`CompletionQueue`] (a vendored `std`-style mpsc — mutex + condvars,
//!   no dependencies) with blocking, `try_`, and drain receive variants.
//!
//! ## Exactly-once resolution
//!
//! A ticket's [`CompletionSlot`] is a tiny atomic state machine:
//!
//! ```text
//!             try_claim (worker, before labeling)
//!   PENDING ────────────────────────────────────► CLAIMED
//!      │                                             │
//!      │ try_shed / cancel / retract                 │ finish_labeled
//!      ▼                                             ▼
//!   RESOLVED ◄───────────────────────────────────────┘
//! ```
//!
//! Cancellation races with dequeue, batch assembly, overflow eviction, and
//! deadline shedding; whoever wins the single `PENDING → RESOLVED` (or
//! `PENDING → CLAIMED`) compare-and-swap owns the terminal event, and every
//! loser backs off without delivering or ledgering anything. A claimed
//! request can no longer be cancelled — its labels are already being
//! computed and will be delivered.
//!
//! ## Bounded delivery without deadlock
//!
//! The queue's bound is enforced on the *ticket window*, not on event
//! pushes: `submit` blocks while `capacity` tickets are outstanding
//! (issued but their events not yet consumed), and since every ticket
//! produces exactly one event the queued-event depth can never exceed the
//! capacity. Workers and cancellers therefore never block on delivery —
//! a canceller running on the client's own thread cannot deadlock against
//! the client's own full queue.

use crate::obs::{Event, EventKind, ServerObs, NO_SHARD};
use ams_models::{LabelId, ModelId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Which loss path took a shed request — the reason delivered to the
/// client in its [`Completion::Shed`] event.
///
/// Wire-stable: serializes by variant name, so the TCP front-end
/// ([`crate::net`]) can carry it verbatim in `Completion` frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShedReason {
    /// Refused at admission, before occupying a queue slot: the shard's
    /// predicted wait already exceeded the request's deadline.
    Admission,
    /// Evicted from a full queue by the shed-oldest overflow policy (or
    /// the submission itself was the overflow victim).
    Overflow,
    /// Dequeued with its deadline budget already exhausted.
    Deadline,
    /// Discarded while still queued because the server was dropped
    /// (aborted) before a worker reached it. A graceful
    /// [`shutdown`](crate::AmsServer::shutdown) never sheds this way — it
    /// drains the backlog.
    Drain,
}

impl ShedReason {
    /// Stable lowercase name for logs and reports.
    pub fn name(&self) -> &'static str {
        match self {
            ShedReason::Admission => "admission",
            ShedReason::Overflow => "overflow",
            ShedReason::Deadline => "deadline",
            ShedReason::Drain => "drain",
        }
    }
}

/// The per-request labeling result delivered to the submitting client —
/// what `shutdown()`'s merged statistics used to fold away.
///
/// Wire-stable: every field round-trips bit-exactly through the frame
/// codec (floats travel as raw IEEE-754 bits), so labels received over
/// TCP are byte-identical to the in-process client's.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LabelResult {
    /// The ticket this result resolves.
    pub ticket: u64,
    /// SLO class index the request ran under (0 without SLO classes).
    pub class: usize,
    /// Labels extracted for this item (with confidences), sorted by id.
    pub labels: Vec<(LabelId, f32)>,
    /// The models the scheduler chose and executed, in completion order.
    pub executed: Vec<ModelId>,
    /// Value of the extracted labels, `f(S, d)` — the paper's objective.
    pub label_value: f64,
    /// The value the SLO ledger banked for this request: the predicted
    /// (class-weighted) value the shedding economics priced it at.
    pub banked_value: f64,
    /// Recall of the full-execution value.
    pub recall: f64,
    /// Wall-clock time the request waited in its shard queue, µs.
    pub queue_wait_us: u64,
    /// Wall-clock time the request spent in its worker (label + batched
    /// execution wait), µs.
    pub execute_us: u64,
    /// Whether wait + execute met the request's deadline (`true` when the
    /// request carried no deadline).
    pub deadline_met: bool,
}

/// The single terminal event of one ticket.
///
/// Wire-stable: the TCP front-end's `Completion` frames embed this type
/// directly (tagged by variant name), with the ticket id remapped to the
/// client-chosen request id.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Completion {
    /// The request was labeled; here is its result.
    Labeled(LabelResult),
    /// The request was shed on the given loss path.
    Shed {
        /// The ticket this event resolves.
        ticket: u64,
        /// SLO class index of the shed request.
        class: usize,
        /// Which loss path took it.
        reason: ShedReason,
    },
    /// The request was cancelled by its ticket before any worker claimed
    /// it.
    Cancelled {
        /// The ticket this event resolves.
        ticket: u64,
        /// SLO class index of the cancelled request.
        class: usize,
    },
}

impl Completion {
    /// The ticket id this event resolves.
    pub fn ticket(&self) -> u64 {
        match self {
            Completion::Labeled(r) => r.ticket,
            Completion::Shed { ticket, .. } | Completion::Cancelled { ticket, .. } => *ticket,
        }
    }

    /// The labeling result, when the request completed.
    pub fn labeled(&self) -> Option<&LabelResult> {
        match self {
            Completion::Labeled(r) => Some(r),
            _ => None,
        }
    }

    /// Whether this event is a cancellation.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, Completion::Cancelled { .. })
    }
}

/// Server-side cancellation ledger: how many tickets were cancelled, by
/// class, with the predicted value they carried. Shared between the live
/// tickets (which record into it) and the server (which folds it into the
/// final report), so a cancellation arriving from any thread lands in the
/// same conservation equation as every other loss path.
///
/// The winning `PENDING → RESOLVED` compare-and-swap of a cancellation
/// runs **while holding this ledger's lock** ([`CompletionSlot::try_cancel`]):
/// any observer that can see the resolved tombstone (a worker skipping it,
/// a queue purge) is therefore ordered after the ledger entry, and a
/// reader taking this lock — `shutdown` folding the report after the
/// workers joined — can never see a cancellation the counters are missing.
#[derive(Debug, Default)]
pub(crate) struct CancelLedger {
    state: Mutex<CancelState>,
}

#[derive(Debug, Default)]
struct CancelState {
    total: u64,
    by_class: Vec<ClassCancel>,
}

/// One class's cancellation tally.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct ClassCancel {
    pub(crate) count: u64,
    pub(crate) value: f64,
}

impl CancelLedger {
    pub(crate) fn total(&self) -> u64 {
        self.state.lock().expect("cancel ledger").total
    }

    pub(crate) fn by_class(&self) -> Vec<ClassCancel> {
        self.state.lock().expect("cancel ledger").by_class.clone()
    }
}

const PENDING: u8 = 0;
const CLAIMED: u8 = 1;
const RESOLVED: u8 = 2;

/// The shared state behind one ticket: the atomic resolution state machine
/// plus everything needed to build and deliver the terminal event. Queued
/// requests carry an `Arc` of this slot, so overflow eviction, deadline
/// shedding, drain-abort, and the labeling path can all notify their
/// victim's client directly.
#[derive(Debug)]
pub struct CompletionSlot {
    id: u64,
    class: usize,
    value: f64,
    state: AtomicU8,
    queue: Arc<CompletionQueue>,
    ledger: Arc<CancelLedger>,
    /// Observability hook (`request correlation id`, pipeline): the
    /// cancellation path emits its terminal event from here, and every
    /// resolution marks the ticket resolved for the outstanding-tickets
    /// gauge.
    obs: Option<(u64, Arc<ServerObs>)>,
}

impl CompletionSlot {
    pub(crate) fn new(
        id: u64,
        class: usize,
        value: f64,
        queue: Arc<CompletionQueue>,
        ledger: Arc<CancelLedger>,
    ) -> Self {
        Self {
            id,
            class,
            value,
            state: AtomicU8::new(PENDING),
            queue,
            ledger,
            obs: None,
        }
    }

    /// Attach the observability pipeline (and the request's correlation
    /// id). Must happen before the slot is shared.
    pub(crate) fn with_obs(mut self, req_id: u64, obs: Arc<ServerObs>) -> Self {
        self.obs = Some((req_id, obs));
        self
    }

    fn obs_resolved(&self) {
        if let Some((_, obs)) = &self.obs {
            obs.ticket_resolved();
        }
    }

    /// The ticket id.
    pub(crate) fn id(&self) -> u64 {
        self.id
    }

    /// Whether the slot has reached its terminal state (event delivered or
    /// retracted). A resolved slot still sitting in a shard queue is a
    /// cancellation tombstone: workers and eviction skip it silently.
    pub(crate) fn is_resolved(&self) -> bool {
        // Acquire: pairs with the Release in the resolving CAS/store, so
        // a reader that sees RESOLVED also sees the delivered completion.
        self.state.load(Ordering::Acquire) == RESOLVED
    }

    /// Worker-side claim before labeling: `PENDING → CLAIMED`. Returns
    /// `false` when the request was already cancelled (or shed) — the
    /// caller must skip it without ledgering anything.
    pub(crate) fn try_claim(&self) -> bool {
        // AcqRel: the Acquire half orders the claim after any prior
        // resolution attempt it beat; the Release half publishes the
        // claim to the cancel/shed CASes racing on PENDING. Acquire on
        // failure: the loser must see the winner's writes before it
        // skips the slot.
        self.state
            .compare_exchange(PENDING, CLAIMED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Deliver the labeling result for a previously claimed slot.
    pub(crate) fn finish_labeled(&self, result: LabelResult) {
        // Acquire (debug-only check): orders the read after our own
        // claim CAS so the assertion can't see a stale pre-claim value.
        debug_assert_eq!(self.state.load(Ordering::Acquire), CLAIMED);
        // Release: only this worker can move CLAIMED → RESOLVED (claim
        // won the CAS), so a plain store suffices; Release publishes the
        // labeling result to is_resolved's Acquire readers.
        self.state.store(RESOLVED, Ordering::Release);
        self.obs_resolved();
        self.queue.deliver(Completion::Labeled(result));
    }

    /// Try to resolve a *pending* slot with a labeling result:
    /// `PENDING → RESOLVED`, delivering [`Completion::Labeled`] on
    /// success. Unlike [`CompletionSlot::finish_labeled`] (which requires
    /// a prior claim), this races against cancellation — it is the
    /// delivery path for cache hits answered at submit time and for
    /// coalesced followers fanned out when their leader resolves, neither
    /// of which ever passes through a worker's claim. Returns `false`
    /// when the slot already resolved (cancelled) — the caller must not
    /// ledger the completion.
    pub(crate) fn try_labeled(&self, result: LabelResult) -> bool {
        // AcqRel: Release publishes the result delivered below to
        // is_resolved's Acquire readers; Acquire orders us after any
        // cancel that beat us. Acquire on failure: before returning
        // false we must see the winner's resolution.
        if self
            .state
            .compare_exchange(PENDING, RESOLVED, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return false;
        }
        self.obs_resolved();
        self.queue.deliver(Completion::Labeled(result));
        true
    }

    /// Try to resolve the slot as shed: `PENDING → RESOLVED`, delivering
    /// the [`Completion::Shed`] event on success. Returns `false` when a
    /// cancellation (or another shed path) already won — the caller must
    /// not ledger the shed.
    pub(crate) fn try_shed(&self, reason: ShedReason) -> bool {
        // AcqRel/Acquire: same protocol as try_labeled — Release
        // publishes the shed resolution, Acquire orders the loser after
        // the winner before the caller skips ledgering.
        if self
            .state
            .compare_exchange(PENDING, RESOLVED, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return false;
        }
        self.obs_resolved();
        self.queue.deliver(Completion::Shed {
            ticket: self.id,
            class: self.class,
            reason,
        });
        true
    }

    /// Client-side cancellation: `PENDING → RESOLVED`, recording the
    /// cancellation in the server ledger and delivering
    /// [`Completion::Cancelled`] on success.
    ///
    /// The CAS runs under the ledger lock so the win and its ledger entry
    /// are one atomic step to every ledger reader: without this, a worker
    /// could observe the tombstone (and count nothing), the server could
    /// join its workers and fold the report, and only then would the
    /// preempted canceller write its ledger entry — a transient
    /// conservation violation in the report.
    pub(crate) fn try_cancel(&self) -> bool {
        let mut ledger = self.ledger.state.lock().expect("cancel ledger");
        // AcqRel: Release publishes the cancellation (and its ledger
        // entry, made atomic by the lock held around us) to Acquire
        // readers; Acquire orders us after a claim/labeling that won.
        // Acquire on failure: we must see the winner's state before
        // reporting the cancel as lost.
        if self
            .state
            .compare_exchange(PENDING, RESOLVED, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return false;
        }
        ledger.total += 1;
        if ledger.by_class.len() <= self.class {
            ledger
                .by_class
                .resize(self.class + 1, ClassCancel::default());
        }
        ledger.by_class[self.class].count += 1;
        ledger.by_class[self.class].value += self.value;
        // Emit the terminal event *inside* the ledger-lock region: a
        // reader that takes this lock after us (shutdown folding the
        // report before its final ring drain) is then guaranteed every
        // ledgered cancellation already has its event in a ring, so the
        // event stream can never under-count what the ledger shows.
        if let Some((req_id, obs)) = &self.obs {
            obs.ticket_resolved();
            obs.emit(Event {
                at_us: obs.now_us(),
                req: *req_id,
                ticket: self.id,
                shard: NO_SHARD,
                class: self.class as u32,
                kind: EventKind::Cancelled,
                detail: 0,
                flag: false,
            });
        }
        drop(ledger);
        self.queue.deliver(Completion::Cancelled {
            ticket: self.id,
            class: self.class,
        });
        true
    }

    /// Retract a ticket whose submission was refused synchronously (queue
    /// closed, or full under the reject policy): resolve without an event
    /// and release the window slot. The caller saw `Rejected` and knows no
    /// event is coming.
    pub(crate) fn retract(&self) {
        // Release: the slot was never shared with a worker (submission
        // was refused synchronously), so no CAS race exists; Release
        // still publishes the tombstone to any is_resolved reader.
        self.state.store(RESOLVED, Ordering::Release);
        self.obs_resolved();
        self.queue.retract();
    }
}

/// A cancellable handle to one submitted request, tied to exactly one
/// terminal [`Completion`] event on the issuing client's queue.
#[derive(Debug, Clone)]
pub struct Ticket {
    slot: Arc<CompletionSlot>,
}

impl Ticket {
    pub(crate) fn new(slot: Arc<CompletionSlot>) -> Self {
        Self { slot }
    }

    pub(crate) fn slot(&self) -> &Arc<CompletionSlot> {
        &self.slot
    }

    /// The ticket id — the key every [`Completion`] event carries.
    pub fn id(&self) -> u64 {
        self.slot.id
    }

    /// The SLO class the request was submitted under.
    pub fn class(&self) -> usize {
        self.slot.class
    }

    /// Cancel the request. Returns `true` when this call won the race and
    /// the terminal event will be [`Completion::Cancelled`]; `false` when
    /// the request already resolved (labeled, shed, or cancelled earlier)
    /// or a worker has claimed it for execution — its original terminal
    /// event stands. Either way exactly one event per ticket is delivered.
    pub fn cancel(&self) -> bool {
        self.slot.try_cancel()
    }

    /// Whether the ticket has reached its terminal state (its event is
    /// delivered or in the client queue). A claimed, still-executing
    /// request reads `false`.
    pub fn is_resolved(&self) -> bool {
        self.slot.is_resolved()
    }
}

#[derive(Debug, Default)]
struct CqState {
    events: VecDeque<Completion>,
    /// Tickets issued whose events the client has not yet consumed:
    /// pending/claimed requests plus queued events. The submit-side window
    /// bound — queued events can never exceed it.
    outstanding: usize,
}

/// The bounded per-client completion queue: an mpsc channel in the vendored
/// style of this repo (mutex + condvars, no dependencies). Producers are
/// the shard workers, overflow eviction, admission control, and
/// cancellation; the consumer is the client. See the module docs for why
/// pushes never block while the ticket window does.
#[derive(Debug)]
pub struct CompletionQueue {
    state: Mutex<CqState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl CompletionQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(CqState::default()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured window capacity.
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Claim one window slot for a new ticket, blocking while `capacity`
    /// tickets are already outstanding.
    pub(crate) fn issue(&self) {
        let mut st = self.state.lock().expect("completion queue");
        while st.outstanding >= self.capacity {
            st = self.not_full.wait(st).expect("completion queue");
        }
        st.outstanding += 1;
    }

    /// Release a window slot without an event (refused submission).
    fn retract(&self) {
        let mut st = self.state.lock().expect("completion queue");
        st.outstanding = st.outstanding.saturating_sub(1);
        drop(st);
        self.not_full.notify_one();
    }

    /// Enqueue one terminal event. Never blocks: the window bound
    /// guarantees `events.len() < capacity` here.
    fn deliver(&self, event: Completion) {
        let mut st = self.state.lock().expect("completion queue");
        debug_assert!(st.events.len() < self.capacity, "window bound violated");
        st.events.push_back(event);
        drop(st);
        self.not_empty.notify_one();
    }

    /// Tickets issued whose events have not been consumed yet.
    pub(crate) fn outstanding(&self) -> usize {
        self.state.lock().expect("completion queue").outstanding
    }

    /// Blocking receive: the next terminal event, or `None` when no ticket
    /// is outstanding (nothing will ever arrive — returning instead of
    /// deadlocking).
    pub(crate) fn recv(&self) -> Option<Completion> {
        let mut st = self.state.lock().expect("completion queue");
        while st.events.is_empty() {
            if st.outstanding == 0 {
                return None;
            }
            st = self.not_empty.wait(st).expect("completion queue");
        }
        let ev = st.events.pop_front();
        st.outstanding = st.outstanding.saturating_sub(1);
        drop(st);
        self.not_full.notify_one();
        ev
    }

    /// Receive with a timeout: wait up to `timeout` for the next event,
    /// returning `None` on timeout. Unlike [`CompletionQueue::recv`] this
    /// keeps waiting while nothing is outstanding — the caller (the TCP
    /// front-end's per-connection writer, which outlives idle gaps
    /// between submission bursts) distinguishes "idle" from "done" by
    /// other means.
    pub(crate) fn recv_timeout(&self, timeout: Duration) -> Option<Completion> {
        let mut st = self.state.lock().expect("completion queue");
        if st.events.is_empty() {
            let (guard, _timed_out) = self
                .not_empty
                .wait_timeout(st, timeout)
                .expect("completion queue");
            st = guard;
        }
        let ev = st.events.pop_front()?;
        st.outstanding = st.outstanding.saturating_sub(1);
        drop(st);
        self.not_full.notify_one();
        Some(ev)
    }

    /// Non-blocking receive: the next event if one is already queued.
    pub(crate) fn try_recv(&self) -> Option<Completion> {
        let mut st = self.state.lock().expect("completion queue");
        let ev = st.events.pop_front()?;
        st.outstanding = st.outstanding.saturating_sub(1);
        drop(st);
        self.not_full.notify_one();
        Some(ev)
    }

    /// Drain every currently queued event without blocking.
    pub(crate) fn drain(&self) -> Vec<Completion> {
        let mut st = self.state.lock().expect("completion queue");
        let events: Vec<Completion> = st.events.drain(..).collect();
        st.outstanding = st.outstanding.saturating_sub(events.len());
        drop(st);
        self.not_full.notify_all();
        events
    }
}
