//! Per-request latency telemetry: log-bucketed histograms and the summary
//! quantiles the serving report publishes.
//!
//! A serving front-end cares about the *tail*, not the mean, and about
//! where time went: a request that waited 80 ms in a queue and executed in
//! 5 ms needs more shards or workers, one that executed in 80 ms needs a
//! bigger batch or a faster model. The server therefore keeps three
//! histograms per worker — queue wait, execute, and total — and merges
//! them at drain, exactly like [`StreamStats`] shards.
//!
//! [`StreamStats`]: ams_core::streaming::StreamStats

use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Geometric bucket growth per step: ~25% relative error ceiling on any
/// reported quantile, constant memory, exact (integer-count) merging.
const GROWTH: f64 = 1.25;
/// Bucket count: `1.25^128` µs ≈ 30 days — anything beyond lands in the
/// last bucket (whose quantile reads report the observed max) instead of
/// being dropped.
const BUCKETS: usize = 128;

/// A log-bucketed latency histogram over microseconds.
///
/// Recording is O(1), merging is element-wise addition (order-independent,
/// like every serving statistic), and quantiles are read by walking the
/// cumulative counts. Values are clamped into the last bucket rather than
/// dropped, so `count` is always the number of recorded requests.
///
/// The histogram serializes at full bucket resolution (not just the
/// [`LatencySummary`] quantiles), so a consumer of a serialized snapshot
/// can compute *arbitrary* quantiles — and merging serialized histograms
/// by element-wise count addition commutes with quantile reads (see the
/// `merge_then_quantile_equals_quantile_over_merged_counts` property).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            count: 0,
            sum_us: 0,
            max_us: 0,
        }
    }
}

/// Strictly increasing bucket upper bounds (µs), computed once.
///
/// Bucket `i` holds values `bound(i-1) < us <= bound(i)`. The bounds follow
/// the geometric series `GROWTH^(i+1)` truncated to integers, forced
/// strictly increasing at the small-integer head where truncation would
/// otherwise produce duplicate bounds — the duplicates are what used to
/// leave buckets 1–2 unreachable (the index formula jumped from 0 to 3 at
/// `us = 2`) while their reported bounds all truncated to 1 µs. Deriving
/// index *and* bound from this one table makes the two consistent by
/// construction: every recorded value is ≤ its bucket's reported bound,
/// and every bucket's bound is strictly above its predecessor's.
fn bucket_bounds() -> &'static [u64; BUCKETS] {
    static BOUNDS: OnceLock<[u64; BUCKETS]> = OnceLock::new();
    BOUNDS.get_or_init(|| {
        let mut bounds = [0u64; BUCKETS];
        let mut prev = 0u64;
        for (i, b) in bounds.iter_mut().enumerate() {
            prev = (GROWTH.powi(i as i32 + 1) as u64).max(prev + 1);
            *b = prev;
        }
        bounds
    })
}

/// Upper bound (µs) of bucket `i`.
fn bucket_bound_us(i: usize) -> u64 {
    bucket_bounds()[i]
}

/// Bucket index for a value in microseconds: the first bucket whose bound
/// covers the value (values past the last bound clamp into the overflow
/// bucket, whose quantile reads report the observed max instead).
fn bucket_index(us: u64) -> usize {
    bucket_bounds()
        .partition_point(|&bound| bound < us)
        .min(BUCKETS - 1)
}

impl LatencyHistogram {
    /// Record one latency in microseconds.
    pub fn record_us(&mut self, us: u64) {
        self.counts[bucket_index(us)] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
    }

    /// Record a [`std::time::Duration`].
    pub fn record(&mut self, d: std::time::Duration) {
        self.record_us(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Number of recorded latencies.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Largest recorded latency in microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Summed recorded latency in microseconds (saturating).
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// The raw per-bucket counts, aligned with [`Self::bucket_bounds_us`].
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Upper bounds (µs) of every bucket, aligned with
    /// [`Self::bucket_counts`]. Bucket `i` holds values
    /// `bounds[i-1] < us <= bounds[i]`; the last bucket is the unbounded
    /// overflow bucket (quantile reads there report the observed max).
    pub fn bucket_bounds_us() -> &'static [u64] {
        bucket_bounds()
    }

    /// The latency at quantile `q` in `[0, 1]`, as the upper bound of the
    /// bucket holding that rank (≤ ~25% relative overestimate). Returns 0
    /// when empty; the top quantile reports the exact observed max.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i == BUCKETS - 1 {
                    // The overflow bucket is unbounded; its only honest
                    // upper bound is the observed max.
                    self.max_us
                } else {
                    bucket_bound_us(i).min(self.max_us)
                };
            }
        }
        self.max_us
    }

    /// Fold another histogram into this one (shard merge).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Condense into the serializable summary the report publishes.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            mean_us: self.mean_us(),
            p50_us: self.quantile_us(0.50),
            p95_us: self.quantile_us(0.95),
            p99_us: self.quantile_us(0.99),
            max_us: self.max_us,
        }
    }
}

/// The published latency quantiles (all wall-clock microseconds).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Requests measured.
    pub count: u64,
    /// Mean latency.
    pub mean_us: f64,
    /// Median.
    pub p50_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Observed maximum.
    pub max_us: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::{prop_assert, prop_assert_eq, proptest};

    #[test]
    fn every_bucket_bound_exceeds_its_predecessor() {
        let bounds = bucket_bounds();
        for i in 1..BUCKETS {
            assert!(
                bounds[i] > bounds[i - 1],
                "bucket {i}: bound {} <= predecessor {}",
                bounds[i],
                bounds[i - 1]
            );
        }
        // The head buckets are all reachable: each small value indexes a
        // distinct bucket whose bound covers it (the old derivation jumped
        // from bucket 0 to 3 at us = 2 and reported bounds 0–2 all as 1).
        for us in 0..=4u64 {
            let i = bucket_index(us);
            assert!(
                us <= bucket_bound_us(i),
                "us={us} above bound of bucket {i}"
            );
        }
        assert_eq!(bucket_index(2), bucket_index(1) + 1, "bucket 1 reachable");
    }

    proptest! {
        /// Index/bound consistency: every recorded value lands in a bucket
        /// whose reported bound covers it (overflow bucket excepted — its
        /// quantile reads report the observed max instead), and the bound
        /// sequence is monotone around every landing point.
        #[test]
        fn recorded_value_is_covered_by_its_buckets_bound(us in 0u64..u64::MAX) {
            let i = bucket_index(us);
            if i < BUCKETS - 1 {
                prop_assert!(us <= bucket_bound_us(i), "us={us} bucket {i}");
            }
            if i > 0 {
                prop_assert!(bucket_bound_us(i) > bucket_bound_us(i - 1));
                prop_assert!(us > bucket_bound_us(i - 1), "us={us} belongs below bucket {i}");
            }
            // Round-trip: a histogram holding only `us` reports it exactly
            // (bound clamped to the observed max).
            let mut h = LatencyHistogram::default();
            h.record_us(us);
            prop_assert_eq!(h.quantile_us(0.99), us);
        }
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let mut h = LatencyHistogram::default();
        for us in 1..=1000u64 {
            h.record_us(us);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile_us(0.50);
        let p99 = h.quantile_us(0.99);
        // Bucket upper bounds overestimate by at most the growth factor.
        assert!((400..=650).contains(&p50), "p50 = {p50}");
        assert!((950..=1000).contains(&p99), "p99 = {p99}");
        assert_eq!(h.quantile_us(1.0), 1000);
        assert!((h.mean_us() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::default();
        for q in [0.0, 0.25, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile_us(q), 0, "q={q}");
        }
        assert_eq!(h.mean_us(), 0.0);
        assert_eq!(h.max_us(), 0);
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50_us, 0);
        assert_eq!(s.p95_us, 0);
        assert_eq!(s.p99_us, 0);
        assert_eq!(s.max_us, 0);
    }

    #[test]
    fn single_sample_dominates_every_quantile() {
        for us in [0u64, 1, 7, 900, 123_456] {
            let mut h = LatencyHistogram::default();
            h.record_us(us);
            // With one sample every rank lands in its bucket, and the
            // bucket bound is clamped to the observed max — so every
            // quantile reports the sample exactly.
            for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
                assert_eq!(h.quantile_us(q), us, "us={us} q={q}");
            }
            assert_eq!(h.mean_us(), us as f64);
            let s = h.summary();
            assert_eq!(
                (s.count, s.p50_us, s.p95_us, s.p99_us, s.max_us),
                (1, us, us, us, us)
            );
        }
    }

    #[test]
    fn merge_of_disjoint_bucket_ranges_preserves_both_tails() {
        // `a` holds only sub-millisecond samples, `b` only multi-second
        // ones: no bucket is occupied in both.
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        for us in [2u64, 5, 11, 40, 100] {
            a.record_us(us);
        }
        for us in [2_000_000u64, 5_000_000, 9_000_000] {
            b.record_us(us);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 8);
        // The low half of the distribution still reads from `a`'s range...
        assert!(
            merged.quantile_us(0.25) <= 100,
            "{}",
            merged.quantile_us(0.25)
        );
        // ...and the tail from `b`'s.
        assert!(merged.quantile_us(0.99) >= 2_000_000);
        assert_eq!(merged.max_us(), 9_000_000);
        // Merging the other way round is identical (commutativity).
        let mut other = b.clone();
        other.merge(&a);
        for q in [0.1, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(merged.quantile_us(q), other.quantile_us(q), "q={q}");
        }
        // Merging an empty histogram is the identity.
        let before = merged.summary();
        merged.merge(&LatencyHistogram::default());
        let after = merged.summary();
        assert_eq!(before.count, after.count);
        assert_eq!(before.p99_us, after.p99_us);
    }

    #[test]
    fn merge_equals_single_stream() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        let mut whole = LatencyHistogram::default();
        for us in [3u64, 17, 170, 1700, 90_000, 2_000_000] {
            whole.record_us(us);
            if us < 1000 { &mut a } else { &mut b }.record_us(us);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.max_us(), whole.max_us());
        for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile_us(q), whole.quantile_us(q), "q={q}");
        }
    }

    #[test]
    fn huge_values_clamp_into_last_bucket() {
        let mut h = LatencyHistogram::default();
        h.record_us(u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile_us(0.5), u64::MAX);
    }

    proptest! {
        /// Merge-then-quantile equals quantile-over-merged-counts: folding
        /// two histograms with [`LatencyHistogram::merge`] and rebuilding
        /// one from the element-wise sum of their *serialized* bucket
        /// counts are the same histogram, at every quantile. This is the
        /// contract that lets a snapshot consumer merge per-shard (or
        /// per-scrape) serialized histograms client-side.
        #[test]
        fn merge_then_quantile_equals_quantile_over_merged_counts(
            xs in proptest::prop::collection::vec(0u64..10_000_000, 0..40),
            ys in proptest::prop::collection::vec(0u64..10_000_000, 0..40),
        ) {
            let mut a = LatencyHistogram::default();
            let mut b = LatencyHistogram::default();
            for &us in &xs {
                a.record_us(us);
            }
            for &us in &ys {
                b.record_us(us);
            }
            let mut merged = a.clone();
            merged.merge(&b);
            // Rebuild independently from the serialized bucket counts.
            let counts: Vec<u64> = a
                .bucket_counts()
                .iter()
                .zip(b.bucket_counts())
                .map(|(x, y)| x + y)
                .collect();
            let json = format!(
                "{{\"counts\":{:?},\"count\":{},\"sum_us\":{},\"max_us\":{}}}",
                counts,
                a.count() + b.count(),
                a.sum_us() + b.sum_us(),
                a.max_us().max(b.max_us()),
            );
            let rebuilt: LatencyHistogram =
                serde_json::from_str(&json).expect("counts-merged histogram parses");
            prop_assert_eq!(&rebuilt, &merged);
            for q in [0.0, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
                prop_assert_eq!(rebuilt.quantile_us(q), merged.quantile_us(q), "q={}", q);
            }
        }
    }

    #[test]
    fn histogram_serializes_at_full_bucket_resolution() {
        let mut h = LatencyHistogram::default();
        for us in [10u64, 100, 1000, 90_000] {
            h.record_us(us);
        }
        let json = serde_json::to_string(&h).expect("histogram serializes");
        let back: LatencyHistogram = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, h);
        assert_eq!(back.bucket_counts().iter().sum::<u64>(), 4);
        assert_eq!(
            back.bucket_counts().len(),
            LatencyHistogram::bucket_bounds_us().len()
        );
    }

    #[test]
    fn summary_round_trips_through_json() {
        let mut h = LatencyHistogram::default();
        for us in [10u64, 100, 1000] {
            h.record_us(us);
        }
        let s = h.summary();
        let json = serde_json::to_string(&s).expect("summary serializes");
        let back: LatencySummary = serde_json::from_str(&json).expect("parses");
        assert_eq!(back.count, 3);
        assert_eq!(back.p99_us, s.p99_us);
    }
}
