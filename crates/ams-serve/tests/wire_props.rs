//! Wire-stable types and a hostile decoder: serde round-trip properties
//! for the frame vocabulary (`WireRequest` / `Completion` / `LabelResult`
//! / `ShedReason`) through the binary codec, plus malformed-frame fuzz
//! against a live listener — truncated length prefixes, oversized frame
//! claims, and garbage payloads must error the connection cleanly: no
//! panic, no leaked ticket, and the server keeps serving.

use ams_core::framework::{AdaptiveModelScheduler, Budget};
use ams_core::predictor::OraclePredictor;
use ams_data::{Dataset, DatasetProfile, TruthTable};
use ams_models::{LabelId, ModelId, ModelZoo};
use ams_serve::net::{decode_value, encode_value, ClientFrame, NetClient, NetServer, WireRequest};
use ams_serve::{
    AmsServer, BackpressurePolicy, Completion, LabelResult, ObsConfig, ServeConfig, ShedReason,
};
use proptest::prelude::*;
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};

fn scheduler() -> AdaptiveModelScheduler {
    let zoo = ModelZoo::standard();
    let predictor = Box::new(OraclePredictor::new(zoo.len(), 0.5));
    AdaptiveModelScheduler::new(zoo, predictor, 0.5, 64)
}

fn truth() -> &'static TruthTable {
    static TRUTH: OnceLock<TruthTable> = OnceLock::new();
    TRUTH.get_or_init(|| {
        let zoo = ModelZoo::standard();
        let ds = Dataset::generate(DatasetProfile::Coco2017, 24, 64);
        TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5)
    })
}

/// Round-trip one value through serde *and* the binary codec, comparing
/// the full Debug rendering (field-for-field, bit-exact floats — Debug
/// prints enough digits to distinguish any two distinct f64s).
fn round_trip<T: Serialize + Deserialize + std::fmt::Debug>(v: &T) -> T {
    let tree = v.to_value();
    let mut buf = Vec::new();
    encode_value(&tree, &mut buf);
    let back = decode_value(&buf).expect("codec round trip");
    assert_eq!(
        format!("{back:?}"),
        format!("{tree:?}"),
        "value tree stable"
    );
    let rebuilt = T::from_value(&back).expect("typed round trip");
    assert_eq!(format!("{rebuilt:?}"), format!("{v:?}"), "type round trip");
    rebuilt
}

fn arb_shed_reason() -> impl Strategy<Value = ShedReason> {
    (0usize..4).prop_map(|i| {
        [
            ShedReason::Admission,
            ShedReason::Overflow,
            ShedReason::Deadline,
            ShedReason::Drain,
        ][i]
    })
}

fn arb_label_result() -> impl Strategy<Value = LabelResult> {
    (
        any::<u64>(),
        0usize..8,
        prop::collection::vec((0u16..512, 0.0f32..1.0), 0..12),
        prop::collection::vec(0u8..10, 0..10),
        (0.0f64..1e6, 0.0f64..1e6, 0.0f64..1.0),
        (any::<u64>(), any::<u64>(), any::<bool>()),
    )
        .prop_map(|(ticket, class, labels, executed, values, timing)| {
            let (label_value, banked_value, recall) = values;
            let (queue_wait_us, execute_us, deadline_met) = timing;
            LabelResult {
                ticket,
                class,
                labels: labels.into_iter().map(|(l, c)| (LabelId(l), c)).collect(),
                executed: executed.into_iter().map(ModelId).collect(),
                label_value,
                banked_value,
                recall,
                queue_wait_us,
                execute_us,
                deadline_met,
            }
        })
}

fn arb_completion() -> impl Strategy<Value = Completion> {
    (
        0usize..3,
        arb_label_result(),
        any::<u64>(),
        0usize..8,
        arb_shed_reason(),
    )
        .prop_map(|(variant, result, ticket, class, reason)| match variant {
            0 => Completion::Labeled(result),
            1 => Completion::Shed {
                ticket,
                class,
                reason,
            },
            _ => Completion::Cancelled { ticket, class },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `ShedReason` round-trips by variant name.
    #[test]
    fn shed_reason_round_trips(reason in arb_shed_reason()) {
        prop_assert_eq!(round_trip(&reason), reason);
    }

    /// `LabelResult` — the labels payload itself — survives the codec
    /// bit-exactly, floats included.
    #[test]
    fn label_result_round_trips(result in arb_label_result()) {
        let back = round_trip(&result);
        prop_assert_eq!(back.labels, result.labels);
        prop_assert_eq!(back.label_value.to_bits(), result.label_value.to_bits());
        prop_assert_eq!(back.recall.to_bits(), result.recall.to_bits());
    }

    /// Every `Completion` variant (the `Completion` frame body)
    /// round-trips.
    #[test]
    fn completion_round_trips(ev in arb_completion()) {
        round_trip(&ev);
    }

    /// `Request` frames round-trip with full scene content and arbitrary
    /// per-ticket economics.
    #[test]
    fn request_frames_round_trip(
        idx in 0usize..24,
        id in any::<u64>(),
        class in 0usize..8,
        deadline_us in (any::<bool>(), any::<u64>()).prop_map(|(s, v)| s.then_some(v)),
        value in (any::<bool>(), 0.0f64..1e9).prop_map(|(s, v)| s.then_some(v)),
    ) {
        let frame = ClientFrame::Request(WireRequest {
            id,
            item: truth().item(idx).clone(),
            class,
            deadline_us,
            value,
        });
        round_trip(&frame);
    }

    /// The decoder is total: arbitrary bytes either decode or error —
    /// they never panic, hang, or over-allocate.
    #[test]
    fn decoder_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_value(&bytes);
    }
}

fn lossless_server() -> AmsServer {
    AmsServer::start(
        scheduler(),
        Budget::Deadline { ms: 900 },
        ServeConfig {
            shards: 2,
            workers_per_shard: 1,
            max_batch: 4,
            queue_capacity: 64,
            policy: BackpressurePolicy::Block,
            obs: Some(ObsConfig::default()),
            ..ServeConfig::default()
        },
    )
}

/// Hostile framing: truncated length prefixes, oversized frame claims,
/// garbage payloads, and a mid-protocol corruption after a real request.
/// Each bad connection must die cleanly — no panic, no leaked ticket —
/// while a well-behaved client on another connection keeps being served,
/// and the final report still reconciles bucket-for-bucket against the
/// event stream.
#[test]
fn malformed_frames_error_cleanly_without_leaking_tickets() {
    let net = NetServer::bind(lossless_server(), "127.0.0.1:0").expect("bind");
    let addr = net.local_addr();

    // 1. Truncated length prefix: two bytes, then EOF.
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(&[0x07, 0x00]).expect("write");
    drop(s);

    // 2. Oversized frame claim: a length prefix beyond MAX_FRAME. The
    //    server must refuse before allocating, not read 4 GiB.
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(&u32::MAX.to_le_bytes()).expect("write");
    // The server closes; a subsequent read sees EOF rather than a hang.
    drop(s);

    // 3. Garbage payload under a valid length prefix.
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(&8u32.to_le_bytes()).expect("write");
    s.write_all(&[0xde, 0xad, 0xbe, 0xef, 0xff, 0x00, 0x11, 0x22])
        .expect("write");
    drop(s);

    // 4. A valid handshake and a real submission, then an abrupt close
    //    with the request possibly still in flight: the issued ticket
    //    must resolve (disconnect == cancel-all), not leak — whether the
    //    label beat the disconnect or not, it is accounted.
    let poisoned = NetClient::connect_with_window(addr, 8).expect("connect");
    poisoned
        .submit(Arc::new(truth().item(0).clone()))
        .expect("submit");
    drop(poisoned);

    // A well-behaved client is still served after all of the above.
    let good = NetClient::connect_with_window(addr, 16).expect("connect");
    for item in truth().items().iter().take(8) {
        good.submit(Arc::new(item.clone())).expect("submit");
    }
    let events = good.drain().expect("drain");
    assert_eq!(events.len(), 8, "good client gets every completion");
    assert!(
        events
            .iter()
            .all(|e| e.completion().and_then(|c| c.labeled()).is_some()),
        "lossless config labels everything"
    );
    good.goodbye().expect("goodbye");
    drop(good);

    let report = net.shutdown();
    // The poisoned connection's ticket either completed or was cancelled
    // by the disconnect; nothing is lost or double-counted.
    assert_eq!(report.offered, 9, "one poisoned + eight good submissions");
    assert!(report.is_conserved(), "no ticket leaked");
    assert!(report.events_reconcile(), "event stream matches the ledger");
}

/// A frame that decodes to a value tree but not to a `ClientFrame` (a
/// well-formed string that names no variant) is a protocol error, not a
/// panic; tickets submitted before it resolve via cancel-all.
#[test]
fn well_formed_but_wrong_shape_frame_closes_the_connection() {
    let net = NetServer::bind(lossless_server(), "127.0.0.1:0").expect("bind");
    let addr = net.local_addr();

    let mut s = TcpStream::connect(addr).expect("connect");
    // A valid Hello so the connection opens...
    let hello = ClientFrame::Hello { window: 4 };
    let mut payload = Vec::new();
    encode_value(&hello.to_value(), &mut payload);
    s.write_all(&(payload.len() as u32).to_le_bytes()).unwrap();
    s.write_all(&payload).unwrap();
    // ...then a frame that is a perfectly valid value tree of the wrong
    // shape.
    let mut bogus = Vec::new();
    encode_value(&serde::Value::Str("NotAFrame".into()), &mut bogus);
    s.write_all(&(bogus.len() as u32).to_le_bytes()).unwrap();
    s.write_all(&bogus).unwrap();
    drop(s);

    let report = net.shutdown();
    assert_eq!(report.offered, 0, "nothing was ever submitted");
    assert!(report.is_conserved());
    assert!(report.events_reconcile());
}
