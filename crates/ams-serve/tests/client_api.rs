//! The request/response client API: completion tickets, per-request label
//! delivery, cancellation, the drop-abort path, and the exactly-once
//! completion invariant — every issued ticket resolves to precisely one
//! terminal event, across every backpressure policy, under cancellation
//! storms and value-weighted eviction.

use ams_core::framework::{AdaptiveModelScheduler, Budget};
use ams_core::predictor::OraclePredictor;
use ams_data::{Dataset, DatasetProfile, TruthTable};
use ams_models::ModelZoo;
use ams_serve::{
    AmsServer, BackpressurePolicy, Completion, ServeConfig, ShedReason, SloClass, SloConfig, Ticket,
};
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::{Arc, OnceLock};

fn scheduler() -> AdaptiveModelScheduler {
    let zoo = ModelZoo::standard();
    let predictor = Box::new(OraclePredictor::new(zoo.len(), 0.5));
    AdaptiveModelScheduler::new(zoo, predictor, 0.5, 64)
}

fn truth() -> &'static TruthTable {
    static TRUTH: OnceLock<TruthTable> = OnceLock::new();
    TRUTH.get_or_init(|| {
        let zoo = ModelZoo::standard();
        let ds = Dataset::generate(DatasetProfile::Coco2017, 40, 64);
        TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5)
    })
}

/// Count events by kind: (labeled, shed, cancelled).
fn tally(events: &[Completion]) -> (u64, u64, u64) {
    let mut t = (0u64, 0u64, 0u64);
    for ev in events {
        match ev {
            Completion::Labeled(_) => t.0 += 1,
            Completion::Shed { .. } => t.1 += 1,
            Completion::Cancelled { .. } => t.2 += 1,
        }
    }
    t
}

/// Lossless serving through the client API: every ticket resolves to a
/// `Labeled` event carrying the request's *own* labels — exactly what the
/// scheduler produces for that item serially — plus a coherent latency
/// split, while the aggregate report stays byte-identical to the old path.
#[test]
fn client_receives_each_requests_own_labels() {
    let budget = Budget::Deadline { ms: 900 };
    let table = truth();
    let server = AmsServer::start(
        scheduler(),
        budget,
        ServeConfig {
            shards: 3,
            workers_per_shard: 2,
            max_batch: 4,
            queue_capacity: 64,
            policy: BackpressurePolicy::Block,
            ..ServeConfig::default()
        },
    );
    let client = server.client();
    let mut by_ticket: Vec<(u64, usize)> = Vec::new(); // (ticket id, item index)
    for (i, item) in table.items().iter().enumerate() {
        let ticket = client
            .submit(Arc::new(item.clone()))
            .ticket()
            .expect("lossless config accepts everything");
        by_ticket.push((ticket.id(), i));
    }
    let mut events = Vec::new();
    while let Some(ev) = client.recv() {
        events.push(ev);
    }
    assert_eq!(events.len(), 40, "one terminal event per ticket");
    let serial = scheduler();
    for ev in &events {
        let result = ev.labeled().expect("lossless run only labels");
        let &(_, item_idx) = by_ticket
            .iter()
            .find(|&&(id, _)| id == result.ticket)
            .expect("event for a known ticket");
        let want = serial.label_item(table.item(item_idx), budget);
        assert_eq!(result.labels, want.labels, "item {item_idx}: labels");
        assert_eq!(result.executed, want.executed, "item {item_idx}: models");
        assert!((result.label_value - want.value).abs() < 1e-9);
        assert!((result.recall - want.recall).abs() < 1e-9);
        assert!(result.deadline_met, "no deadline configured");
        assert_eq!(result.class, 0);
    }
    let report = server.shutdown();
    assert_eq!(report.completed, 40);
    assert_eq!(report.cancelled, 0);
    assert!(report.is_conserved());
    // recv after everything resolved: no outstanding tickets, no hang.
    assert_eq!(client.outstanding(), 0);
    assert!(client.recv().is_none());
}

/// Cancellation races with dequeue and batch assembly: under a storm that
/// cancels every other ticket mid-service, each ticket still resolves to
/// exactly one terminal event, the report's `cancelled` bucket matches the
/// delivered `Cancelled` events, and the conservation equation includes
/// them.
#[test]
fn cancellation_storm_keeps_completions_exactly_once() {
    let table = truth();
    let server = AmsServer::start(
        scheduler(),
        Budget::Deadline { ms: 900 },
        ServeConfig {
            shards: 2,
            workers_per_shard: 1,
            max_batch: 4,
            queue_capacity: 64,
            policy: BackpressurePolicy::Block,
            // Real wall time per batch, so cancels genuinely race the
            // workers instead of always losing to an instant drain.
            exec_emulation_scale: 2e-3,
            ..ServeConfig::default()
        },
    );
    let client = server.client();
    let (tx, rx) = std::sync::mpsc::channel::<Ticket>();
    let canceller = std::thread::spawn(move || {
        let mut won = 0u64;
        for ticket in rx {
            if ticket.cancel() {
                won += 1;
                // A won cancel can never be won again.
                assert!(!ticket.cancel(), "double cancel must lose");
                assert!(ticket.is_resolved());
            }
        }
        won
    });
    let mut issued = 0u64;
    for (i, item) in table.items().iter().enumerate() {
        let outcome = client.submit(Arc::new(item.clone()));
        let ticket = outcome.ticket().expect("block policy always queues");
        issued += 1;
        if i % 2 == 0 {
            tx.send(ticket).expect("canceller alive");
        }
    }
    drop(tx);
    let cancels_won = canceller.join().expect("canceller");
    let report = server.shutdown();
    let mut events = Vec::new();
    while let Some(ev) = client.recv() {
        events.push(ev);
    }
    assert_eq!(events.len() as u64, issued, "exactly one event per ticket");
    let ids: HashSet<u64> = events.iter().map(Completion::ticket).collect();
    assert_eq!(ids.len() as u64, issued, "no ticket resolved twice");
    let (labeled, shed, cancelled) = tally(&events);
    assert_eq!(labeled, report.completed);
    assert_eq!(cancelled, report.cancelled);
    assert_eq!(cancelled, cancels_won, "every won cancel delivered");
    assert_eq!(
        shed,
        report.shed_admission + report.shed_oldest + report.shed_deadline
    );
    assert!(report.is_conserved(), "cancelled requests stay conserved");
    assert_eq!(report.completed + report.cancelled, issued);
    assert!(report.cancelled > 0, "some cancels must win the race");
    assert!(report.completed > 0, "some requests must outrun the storm");
    // Stats cover only labeled requests — a cancelled request never enters
    // the recall denominator.
    assert_eq!(report.stats.items as u64, report.completed);
}

/// Dropping a server without `shutdown` aborts it: queued-but-unserved
/// tickets resolve to `Shed(Drain)`, in-flight work completes, every
/// worker is joined (drop returns only afterwards), and the client sees
/// exactly one event per ticket. Regression for the detached-thread leak:
/// dropping mid-test used to leave workers running forever.
#[test]
fn dropping_the_server_drains_workers_and_sheds_the_backlog() {
    let table = truth();
    let server = AmsServer::start(
        scheduler(),
        Budget::Deadline { ms: 900 },
        ServeConfig {
            shards: 2,
            workers_per_shard: 1,
            max_batch: 2,
            queue_capacity: 64,
            policy: BackpressurePolicy::Block,
            // Slow workers: most of the stream is still queued at drop.
            exec_emulation_scale: 5e-3,
            ..ServeConfig::default()
        },
    );
    let client = server.client();
    let mut issued = 0u64;
    for item in table.items() {
        client.submit(Arc::new(item.clone())).ticket().unwrap();
        issued += 1;
    }
    // Wait for the workers to pop (and thereby claim) at least one batch:
    // a popped request is in a worker's hands, so it must complete even
    // through the abort. Everything still queued at drop is shed as Drain.
    while server.pending() as u64 >= issued {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    drop(server);
    // After the drop every worker has been joined: no new completions can
    // be in flight, so a plain drain must already see all of them.
    let events = client.drain();
    assert_eq!(events.len() as u64, issued, "one event per ticket");
    let (labeled, shed, cancelled) = tally(&events);
    assert_eq!(cancelled, 0);
    assert!(shed > 0, "the backlog must be shed as Drain");
    assert!(labeled > 0, "in-flight batches still complete");
    for ev in &events {
        if let Completion::Shed { reason, .. } = ev {
            assert_eq!(*reason, ShedReason::Drain, "abort sheds are Drain");
        }
    }
    // The server is gone: later submissions are refused synchronously.
    assert!(client.submit(Arc::new(table.item(0).clone())).is_rejected());
    assert_eq!(client.outstanding(), 0);
    assert!(client.recv().is_none(), "drained client terminates recv");
}

/// The completion window genuinely bounds the ticket pipeline: a client
/// with capacity N blocks its (N+1)-th submission until an event is
/// consumed — and unblocks as soon as one is.
#[test]
fn completion_window_blocks_submission_until_the_client_drains() {
    let table = truth();
    let server = AmsServer::start(
        scheduler(),
        Budget::Deadline { ms: 900 },
        ServeConfig {
            shards: 1,
            workers_per_shard: 1,
            max_batch: 8,
            queue_capacity: 64,
            policy: BackpressurePolicy::Block,
            ..ServeConfig::default()
        },
    );
    let client = server.client_with_capacity(4);
    assert_eq!(client.capacity(), 4);
    let items: Vec<Arc<_>> = table
        .items()
        .iter()
        .take(6)
        .map(|i| Arc::new(i.clone()))
        .collect();
    let submitter = {
        let client = client.clone();
        std::thread::spawn(move || {
            for item in items {
                client.submit(item).ticket().expect("eventually accepted");
            }
        })
    };
    // Consume events until the submitter gets all 6 through its 4-wide
    // window; recv unblocks the window as it consumes.
    let mut events = Vec::new();
    while events.len() < 6 {
        match client.recv() {
            Some(ev) => events.push(ev),
            None => std::thread::yield_now(),
        }
    }
    submitter.join().expect("submitter");
    assert_eq!(events.len(), 6);
    assert!(events.iter().all(|e| e.labeled().is_some()));
    server.shutdown();
}

/// Per-class admission reservations, end to end: a flood of bulk traffic
/// cannot starve the interactive class of *admission* — its reserved
/// slots admit it at the flood's peak — and the per-class ledgers stay
/// conserved (including cancellations) under every backpressure policy.
#[test]
fn admission_reservations_conserve_and_protect_across_policies() {
    let table = truth();
    for policy in [
        BackpressurePolicy::Block,
        BackpressurePolicy::Reject,
        BackpressurePolicy::ShedOldest,
    ] {
        let server = AmsServer::start(
            scheduler(),
            Budget::Deadline { ms: 900 },
            ServeConfig {
                shards: 1,
                workers_per_shard: 1,
                queue_capacity: 8,
                max_batch: 2,
                policy,
                // Slow drain so the flood genuinely saturates the queue.
                exec_emulation_scale: 5e-3,
                slo: Some(SloConfig {
                    classes: vec![
                        SloClass::new("bulk", 60_000, 1.0),
                        // Interactive reserves half the queue's slots.
                        SloClass::new("interactive", 60_000, 4.0).with_reserve(0.5),
                    ],
                    admission_control: false,
                    value_weighted_shedding: policy == BackpressurePolicy::ShedOldest,
                    edf_dequeue: false,
                }),
                ..ServeConfig::default()
            },
        );
        let client = server.client();
        let mut outcomes: Vec<(usize, bool)> = Vec::new(); // (class, accepted)
        let mut issued = 0u64;
        // Bulk flood first, then interactive submissions at the peak.
        for (i, item) in table.items().iter().enumerate() {
            let class = if i < 30 { 0 } else { 1 };
            let outcome = client.submit_class(Arc::new(item.clone()), class);
            issued += u64::from(!outcome.is_rejected());
            outcomes.push((class, outcome.is_accepted()));
        }
        let report = server.shutdown();
        let ctx = format!("policy {policy:?}");
        // The reserve holds: the bulk flood can saturate the shared slots,
        // but the interactive class is still admitted at least up to its
        // reserved share (4 of 8 slots) — without the reservation, a
        // Reject queue full of bulk would refuse *every* interactive
        // request. Block and ShedOldest admit all of them (blocking or
        // evicting over-reserve bulk, never the protected slots).
        let interactive_accepted = outcomes
            .iter()
            .filter(|&&(class, accepted)| class == 1 && accepted)
            .count();
        assert!(
            interactive_accepted >= 4,
            "{ctx}: the reserve admits at least its share, got {interactive_accepted}"
        );
        if policy != BackpressurePolicy::Reject {
            assert_eq!(interactive_accepted, 10, "{ctx}: nothing refused");
        }
        assert!(report.is_conserved(), "{ctx}");
        let slo = report.slo.as_ref().expect("slo ledger");
        assert!(slo.is_conserved(), "{ctx}: per-class ledgers balance");
        assert_eq!(slo.classes[1].offered, 10, "{ctx}");
        for c in &slo.classes {
            assert!(
                (c.value_offered - c.value_completed - c.value_shed - c.value_cancelled).abs()
                    < 1e-6,
                "{ctx} class {}: value ledger balances",
                c.name
            );
        }
        // Exactly-once on the event side too.
        let events = client.drain();
        assert_eq!(events.len() as u64, issued, "{ctx}: one event per ticket");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The exactly-once completion property: over arbitrary shard/worker/
    /// batch shapes, all three backpressure policies, value-weighted
    /// eviction on or off, and a cancellation storm of arbitrary phase,
    /// every issued ticket yields one terminal event, ids never repeat,
    /// the event tally matches the report's ledger bucket for bucket, and
    /// the conservation equation (now including `cancelled`) holds.
    #[test]
    fn every_ticket_resolves_exactly_once(
        shards in 1usize..4,
        workers_per_shard in 1usize..3,
        max_batch in 1usize..6,
        queue_capacity in 2usize..10,
        policy_idx in 0usize..3,
        slo_aware in any::<bool>(),
        cancel_stride in 2usize..5,
    ) {
        let policy = [
            BackpressurePolicy::Block,
            BackpressurePolicy::Reject,
            BackpressurePolicy::ShedOldest,
        ][policy_idx];
        let table = truth();
        let slo = slo_aware.then(|| SloConfig::aware(vec![
            SloClass::new("interactive", 25, 4.0),
            SloClass::new("bulk", 10_000, 1.0),
        ]));
        let server = AmsServer::start(
            scheduler(),
            Budget::Deadline { ms: 900 },
            ServeConfig {
                shards,
                workers_per_shard,
                max_batch,
                queue_capacity,
                policy,
                exec_emulation_scale: 2e-3,
                slo,
                ..ServeConfig::default()
            },
        );
        let client = server.client();
        let mut issued = 0u64;
        let mut rejected = 0u64;
        let mut storm: Vec<Ticket> = Vec::new();
        for (i, item) in table.items().iter().enumerate() {
            match client.submit_class(Arc::new(item.clone()), i % 2).ticket() {
                Some(ticket) => {
                    issued += 1;
                    if i % cancel_stride == 0 {
                        storm.push(ticket);
                    }
                }
                None => rejected += 1,
            }
            // Cancel with a lag of one burst, so cancels hit queued,
            // in-assembly, and already-resolved tickets alike.
            if i % 8 == 7 {
                for t in storm.drain(..) {
                    t.cancel();
                }
            }
        }
        for t in storm.drain(..) {
            t.cancel();
        }
        let report = server.shutdown();
        let mut events = Vec::new();
        while let Some(ev) = client.recv() {
            events.push(ev);
        }
        prop_assert_eq!(events.len() as u64, issued, "one event per ticket");
        let ids: HashSet<u64> = events.iter().map(Completion::ticket).collect();
        prop_assert_eq!(ids.len() as u64, issued, "ids unique");
        let (labeled, shed, cancelled) = tally(&events);
        prop_assert_eq!(labeled, report.completed);
        prop_assert_eq!(cancelled, report.cancelled);
        prop_assert_eq!(
            shed,
            report.shed_admission + report.shed_oldest + report.shed_deadline
        );
        prop_assert_eq!(rejected, report.rejected);
        prop_assert!(report.is_conserved(), "conservation with cancellation");
        prop_assert_eq!(report.offered, issued + rejected);
        if let Some(slo) = &report.slo {
            prop_assert!(slo.is_conserved(), "class ledgers balance");
            for c in &slo.classes {
                prop_assert!(
                    (c.value_offered - c.value_completed - c.value_shed - c.value_cancelled)
                        .abs() < 1e-6,
                    "class {} value ledger", c.name
                );
            }
        }
    }
}
