//! The live observability layer, cross-checked against the conservation
//! ledger: every backpressure policy × cache on/off × a cancellation
//! storm must produce an event stream whose per-kind totals match the
//! `ServeReport` buckets exactly (`events_reconcile`), ring overflow must
//! keep totals honest through drop-counting, the spill-routing gauges
//! must surface the very inputs `Router::route` prices with, and the
//! Prometheus exposition must stay well-formed.

use ams_core::framework::{AdaptiveModelScheduler, Budget};
use ams_core::predictor::OraclePredictor;
use ams_data::{Dataset, DatasetProfile, TruthTable};
use ams_models::ModelZoo;
use ams_serve::{
    AffinityConfig, AmsServer, BackpressurePolicy, CacheConfig, EventKind, ObsConfig, RoutingMode,
    ServeConfig, SloClass, SloConfig,
};
use std::sync::{Arc, OnceLock};

fn scheduler() -> AdaptiveModelScheduler {
    let zoo = ModelZoo::standard();
    let predictor = Box::new(OraclePredictor::new(zoo.len(), 0.5));
    AdaptiveModelScheduler::new(zoo, predictor, 0.5, 64)
}

fn truth() -> &'static TruthTable {
    static TRUTH: OnceLock<TruthTable> = OnceLock::new();
    TRUTH.get_or_init(|| {
        let zoo = ModelZoo::standard();
        // A small scene pool re-sampled many times: plenty of exact
        // duplicates so the cached runs exercise hits and coalescing.
        let ds = Dataset::generate(DatasetProfile::Coco2017, 24, 64);
        TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5)
    })
}

/// One stressed run: tight queues, deadline classes, a cancellation storm
/// from the client side, and (optionally) the label cache — then the
/// event-stream/ledger cross-check.
fn storm(policy: BackpressurePolicy, cache: bool) {
    let server = AmsServer::start(
        scheduler(),
        Budget::Deadline { ms: 900 },
        ServeConfig {
            shards: 2,
            workers_per_shard: 1,
            queue_capacity: 4,
            max_batch: 4,
            policy,
            exec_emulation_scale: 5e-4,
            slo: Some(SloConfig::aware(vec![
                SloClass::new("alert", 30, 4.0),
                SloClass::new("archive", 250, 1.0),
            ])),
            cache: cache.then(CacheConfig::default),
            obs: Some(ObsConfig::default()),
            ..ServeConfig::default()
        },
    );
    let client = server.client();
    let items: Vec<_> = truth().items().iter().cloned().map(Arc::new).collect();
    let mut tickets = Vec::new();
    for (i, item) in items.iter().cycle().take(items.len() * 4).enumerate() {
        match client.submit_class(Arc::clone(item), i % 2).ticket() {
            Some(t) => tickets.push(t),
            None => continue,
        }
        // The storm: cancel every third ticket immediately, racing the
        // workers' claim; drain the window periodically so submission
        // never deadlocks on a full completion queue.
        if i % 3 == 0 {
            if let Some(t) = tickets.last() {
                t.cancel();
            }
        }
        if i % 16 == 0 {
            client.drain();
        }
    }
    // A mid-stream snapshot must work while workers are still running.
    let snap = server.metrics_snapshot().expect("obs is on");
    assert!(snap.uptime_us > 0);
    assert_eq!(snap.events.len(), ams_serve::obs::KIND_COUNT);
    let report = server.shutdown();
    while client.recv().is_some() {}
    assert!(report.is_conserved(), "ledger conservation: {report:?}");
    assert!(
        report.events_reconcile(),
        "event/ledger reconciliation failed under {policy:?} cache={cache}: \
         events={:?} offered={} completed={} rejected={} shed=({},{},{}) \
         cancelled={} cache_hit={} coalesced={}",
        report.obs.as_ref().map(|o| &o.snapshot.events),
        report.offered,
        report.completed,
        report.rejected,
        report.shed_oldest,
        report.shed_deadline,
        report.shed_admission,
        report.cancelled,
        report.cache_hit,
        report.coalesced,
    );
    let obs = report.obs.as_ref().expect("obs report present");
    // The storm must actually have exercised the interesting paths.
    assert!(report.cancelled > 0, "storm produced no cancellations");
    assert_eq!(obs.total(EventKind::Cancelled), report.cancelled);
    if cache {
        assert!(
            report.cache_hit + report.coalesced > 0,
            "duplicate-heavy stream produced no cache traffic"
        );
    }
    // Every ticket resolved, so no tickets may still be outstanding.
    assert_eq!(obs.snapshot.outstanding_tickets, 0);
}

#[test]
fn events_reconcile_under_block_policy() {
    storm(BackpressurePolicy::Block, false);
    storm(BackpressurePolicy::Block, true);
}

#[test]
fn events_reconcile_under_reject_policy() {
    storm(BackpressurePolicy::Reject, false);
    storm(BackpressurePolicy::Reject, true);
}

#[test]
fn events_reconcile_under_shed_oldest_policy() {
    storm(BackpressurePolicy::ShedOldest, false);
    storm(BackpressurePolicy::ShedOldest, true);
}

/// Ring overflow keeps totals honest: with absurdly small rings and an
/// aggregator too slow to keep up, events *will* drop — and the
/// reconciliation must still hold because drops are counted per kind at
/// the producer (`total = drained + dropped`), never silently lost.
#[test]
fn ring_overflow_drop_counting_keeps_totals_honest() {
    let server = AmsServer::start(
        scheduler(),
        Budget::Deadline { ms: 900 },
        ServeConfig {
            shards: 1,
            workers_per_shard: 1,
            queue_capacity: 256,
            max_batch: 8,
            obs: Some(ObsConfig {
                ring_capacity: 8,
                // Far longer than the run: every drain happens at
                // snapshot/shutdown, so the rings must overflow.
                drain_interval_ms: 60_000,
                ..ObsConfig::default()
            }),
            ..ServeConfig::default()
        },
    );
    let items: Vec<_> = truth().items().iter().cloned().map(Arc::new).collect();
    for item in items.iter().cycle().take(items.len() * 8) {
        server.submit(Arc::clone(item));
    }
    let report = server.shutdown();
    let obs = report.obs.as_ref().expect("obs report present");
    assert!(
        obs.snapshot.dropped_total > 0,
        "8-slot rings with a stalled aggregator must overflow"
    );
    assert!(report.is_conserved());
    assert!(
        report.events_reconcile(),
        "drop-counted totals must still reconcile: {:?}",
        obs.snapshot.events
    );
}

/// Satellite regression: the per-shard registry gauges surface exactly
/// the inputs spill routing prices — `depth × service_hint` — so a
/// dashboard reading `ams_shard_estimated_wait_us` sees the same number
/// `Router::route` and SLO admission used.
#[test]
fn shard_gauges_match_what_routing_priced() {
    let server = AmsServer::start(
        scheduler(),
        Budget::Deadline { ms: 900 },
        ServeConfig {
            shards: 2,
            workers_per_shard: 1,
            queue_capacity: 64,
            max_batch: 4,
            routing: RoutingMode::Affinity(AffinityConfig::default()),
            exec_emulation_scale: 2e-3,
            obs: Some(ObsConfig::default()),
            ..ServeConfig::default()
        },
    );
    let items: Vec<_> = truth().items().iter().cloned().map(Arc::new).collect();
    for item in items.iter().cycle().take(items.len() * 4) {
        server.submit(Arc::clone(item));
    }
    let snap = server.metrics_snapshot().expect("obs is on");
    for g in &snap.shards {
        assert_eq!(
            g.estimated_wait_us,
            g.depth * g.service_hint_us,
            "shard {} gauge must be the product routing prices",
            g.shard
        );
    }
    let report = server.shutdown();
    // And the final fold keeps the invariant (drained queues: both zero).
    for g in &report.obs.as_ref().expect("obs").snapshot.shards {
        assert_eq!(g.estimated_wait_us, g.depth * g.service_hint_us);
    }
    assert!(report.events_reconcile());
}

/// The Prometheus exposition parses: every non-comment line is
/// `name{labels} value` with a finite value, every family has HELP+TYPE
/// (in that order), and the counter families are non-negative.
#[test]
fn prometheus_exposition_is_well_formed() {
    let server = AmsServer::start(
        scheduler(),
        Budget::Deadline { ms: 900 },
        ServeConfig {
            shards: 2,
            workers_per_shard: 1,
            max_batch: 4,
            cache: Some(CacheConfig::default()),
            slo: Some(SloConfig::default()),
            obs: Some(ObsConfig::default()),
            ..ServeConfig::default()
        },
    );
    for item in truth().items().iter().take(16) {
        server.submit(Arc::new(item.clone()));
    }
    let text = server.render_metrics();
    let mut families = 0usize;
    let mut samples = 0usize;
    let mut last_help: Option<String> = None;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().expect("family name");
            last_help = Some(name.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("family name");
            let kind = parts.next().expect("family kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "summary"),
                "unknown family type {kind:?}"
            );
            assert_eq!(
                last_help.as_deref(),
                Some(name),
                "TYPE must follow its family's HELP"
            );
            families += 1;
            continue;
        }
        assert!(!line.starts_with('#'), "unexpected comment: {line:?}");
        let (series, value) = line.rsplit_once(' ').expect("`name value` sample");
        let metric = series.split('{').next().expect("metric name");
        assert!(
            metric
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "bad metric name {metric:?}"
        );
        let v: f64 = value.parse().expect("sample value parses");
        assert!(v.is_finite(), "non-finite sample: {line:?}");
        if metric.ends_with("_total") || metric.ends_with("_count") {
            assert!(v >= 0.0, "negative counter: {line:?}");
        }
        samples += 1;
    }
    assert!(families >= 10, "expected many families, got {families}");
    assert!(samples >= families, "every family needs samples");
    server.shutdown();

    // Observability off: still well-formed scrape output (one comment).
    let server = AmsServer::start(
        scheduler(),
        Budget::Deadline { ms: 900 },
        ServeConfig::default(),
    );
    assert_eq!(server.render_metrics(), "# ams observability disabled\n");
    assert!(server.metrics_snapshot().is_none());
    server.shutdown();
}

/// The flight recorder answers `why(id)` for shed and cancelled requests
/// with a causal trace ending in the matching verdict, both live and from
/// the final report.
#[test]
fn flight_recorder_answers_why_for_interesting_requests() {
    let server = AmsServer::start(
        scheduler(),
        Budget::Deadline { ms: 900 },
        ServeConfig {
            shards: 1,
            workers_per_shard: 1,
            queue_capacity: 128,
            max_batch: 4,
            // Shed everything at dequeue: every request is "interesting".
            request_timeout_ms: Some(0),
            obs: Some(ObsConfig::default()),
            ..ServeConfig::default()
        },
    );
    for item in truth().items().iter().take(8) {
        server.submit(Arc::new(item.clone()));
    }
    let report = server.shutdown();
    let obs = report.obs.as_ref().expect("obs report present");
    assert!(report.shed_deadline > 0);
    assert!(!obs.traces.is_empty(), "sheds must be recorded");
    for trace in &obs.traces {
        assert_eq!(trace.verdict, "shed_deadline");
        assert!(
            trace.events.iter().any(|e| e.kind == "admitted"),
            "trace must start at admission: {}",
            trace.dump()
        );
        // `why` finds the same trace by request id.
        let again = obs.why(trace.req).expect("why(req) finds the trace");
        assert_eq!(again.verdict, trace.verdict);
    }
    assert!(report.events_reconcile());
}
