//! The TCP front-end, end to end over loopback: labels through the
//! socket byte-identical to the in-process client, per-ticket
//! deadline/value travelling the wire, cancellation by request id,
//! graceful goodbye vs abrupt disconnect (cancel-all), and ledger/event
//! conservation across all of it.

use ams_core::framework::{AdaptiveModelScheduler, Budget};
use ams_core::predictor::OraclePredictor;
use ams_data::{Dataset, DatasetProfile, TruthTable};
use ams_models::ModelZoo;
use ams_serve::net::{NetClient, NetEvent, NetServer};
use ams_serve::{
    AmsServer, BackpressurePolicy, Completion, ObsConfig, ServeConfig, ShedReason, SloClass,
    SloConfig, SubmitOptions,
};
use serde_json::to_string;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

fn scheduler() -> AdaptiveModelScheduler {
    let zoo = ModelZoo::standard();
    let predictor = Box::new(OraclePredictor::new(zoo.len(), 0.5));
    AdaptiveModelScheduler::new(zoo, predictor, 0.5, 64)
}

fn truth() -> &'static TruthTable {
    static TRUTH: OnceLock<TruthTable> = OnceLock::new();
    TRUTH.get_or_init(|| {
        let zoo = ModelZoo::standard();
        let ds = Dataset::generate(DatasetProfile::Coco2017, 40, 64);
        TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5)
    })
}

fn lossless_config() -> ServeConfig {
    ServeConfig {
        shards: 3,
        workers_per_shard: 2,
        max_batch: 4,
        queue_capacity: 64,
        policy: BackpressurePolicy::Block,
        obs: Some(ObsConfig::default()),
        ..ServeConfig::default()
    }
}

/// Labels received over the socket are **byte-identical** to what the
/// in-process client delivers for the same items under the same config:
/// same labels, same model choices, bit-equal values — compared through
/// their serialized form, which is exactly what crossed the wire.
#[test]
fn socket_labels_are_byte_identical_to_in_process() {
    let budget = Budget::Deadline { ms: 900 };
    let table = truth();

    // In-process reference run.
    let server = AmsServer::start(scheduler(), budget, lossless_config());
    let client = server.client();
    let mut inproc: HashMap<usize, String> = HashMap::new(); // item idx → labels JSON
    let mut by_ticket: HashMap<u64, usize> = HashMap::new();
    for (i, item) in table.items().iter().enumerate() {
        let t = client.submit(Arc::new(item.clone())).ticket().unwrap();
        by_ticket.insert(t.id(), i);
    }
    while let Some(ev) = client.recv() {
        let r = ev.labeled().expect("lossless run");
        let idx = by_ticket[&r.ticket];
        inproc.insert(idx, to_string(&r.labels).unwrap());
    }
    let inproc_report = server.shutdown();

    // Same items through the TCP front-end; request id = item index.
    let net = NetServer::bind(
        AmsServer::start(scheduler(), budget, lossless_config()),
        "127.0.0.1:0",
    )
    .expect("bind");
    let remote = NetClient::connect(net.local_addr()).expect("connect");
    for item in table.items() {
        remote.submit(Arc::new(item.clone())).expect("submit");
    }
    let events = remote.drain().expect("drain");
    assert_eq!(events.len(), 40, "one completion per request");
    for ev in &events {
        let c = ev.completion().expect("no rejections under Block");
        let r = c.labeled().expect("lossless run only labels");
        let idx = r.ticket as usize; // echoed client-chosen id
        assert_eq!(
            to_string(&r.labels).unwrap(),
            inproc[&idx],
            "item {idx}: labels byte-identical through the socket"
        );
    }
    remote.goodbye().expect("goodbye");
    assert!(
        remote.recv().expect("recv").is_none(),
        "drained mirror terminates"
    );
    drop(remote);
    let net_report = net.shutdown();

    // serve == serial holds *through the socket*: the aggregate stats
    // match the in-process run field for field.
    assert_eq!(net_report.completed, inproc_report.completed);
    assert_eq!(net_report.stats.items, inproc_report.stats.items);
    assert_eq!(
        net_report.stats.total_executions,
        inproc_report.stats.total_executions
    );
    assert!((net_report.stats.recall_sum - inproc_report.stats.recall_sum).abs() < 1e-12);
    assert!(net_report.is_conserved());
    assert!(net_report.events_reconcile());
}

/// Satellite regression: a client killed abruptly after its first
/// completion leaves no dangling state — all its outstanding tickets
/// resolve (`Cancelled` for the unclaimed, their original event for the
/// claimed), `events_reconcile()` and the per-class value ledgers
/// balance, and a second connection keeps being served throughout.
#[test]
fn abrupt_disconnect_cancels_outstanding_and_server_keeps_serving() {
    let table = truth();
    let server = AmsServer::start(
        scheduler(),
        Budget::Deadline { ms: 900 },
        ServeConfig {
            shards: 2,
            workers_per_shard: 1,
            max_batch: 2,
            queue_capacity: 64,
            policy: BackpressurePolicy::Block,
            // Slow workers: most of the victim's stream is still queued
            // when the disconnect lands.
            exec_emulation_scale: 5e-3,
            obs: Some(ObsConfig::default()),
            slo: Some(SloConfig {
                classes: vec![
                    SloClass::new("interactive", 60_000, 4.0),
                    SloClass::new("bulk", 60_000, 1.0),
                ],
                admission_control: false,
                value_weighted_shedding: false,
                edf_dequeue: false,
            }),
            ..ServeConfig::default()
        },
    );
    let net = NetServer::bind(server, "127.0.0.1:0").expect("bind");
    let addr = net.local_addr();

    // The victim: submit everything, read exactly one completion (so at
    // least one claim happened), then die without a goodbye.
    let victim = NetClient::connect_with_window(addr, 64).expect("connect");
    for (i, item) in table.items().iter().enumerate() {
        victim
            .submit_class(Arc::new(item.clone()), i % 2)
            .expect("submit");
    }
    let first = victim
        .recv()
        .expect("recv")
        .expect("40 outstanding, one must arrive");
    assert!(first.completion().is_some());
    drop(victim); // abrupt: no goodbye, 39 events undelivered

    // A second connection is served to completion while the victim's
    // tickets are being cancelled and its claimed work drains.
    let survivor = NetClient::connect_with_window(addr, 16).expect("connect");
    for item in table.items().iter().take(10) {
        survivor.submit(Arc::new(item.clone())).expect("submit");
    }
    let events = survivor.drain().expect("drain");
    assert_eq!(events.len(), 10, "survivor gets every completion");
    assert!(
        events
            .iter()
            .all(|e| e.completion().and_then(Completion::labeled).is_some()),
        "survivor's requests all label"
    );
    survivor.goodbye().expect("goodbye");
    drop(survivor);

    let report = net.shutdown();
    // An abrupt close is a TCP reset: requests the victim wrote but the
    // server had not yet read may be discarded by the kernel, so the
    // exact offered count is not deterministic — the conservation of
    // everything that *was* admitted is.
    assert!(
        (11..=50).contains(&report.offered),
        "survivor's 10 plus at least the victim's claimed head, got {}",
        report.offered
    );
    assert!(
        report.cancelled > 0,
        "disconnect cancelled the victim's queued backlog"
    );
    assert!(report.is_conserved(), "conservation across the disconnect");
    assert!(
        report.events_reconcile(),
        "event stream reconciles bucket-for-bucket"
    );
    let slo = report.slo.as_ref().expect("slo ledgers");
    assert!(slo.is_conserved(), "per-class ledgers balance");
    for c in &slo.classes {
        assert!(
            (c.value_offered - c.value_completed - c.value_shed - c.value_cancelled).abs() < 1e-6,
            "class {}: value ledger balances through the disconnect",
            c.name
        );
    }
}

/// Per-ticket economics ride the wire: a tight per-request deadline set
/// via `SubmitOptions` (no SLO classes configured at all) sheds exactly
/// the requests that carried it, and a per-ticket value override lands
/// in the class value ledger.
#[test]
fn per_ticket_deadline_and_value_travel_the_wire() {
    let table = truth();

    // Deadlines without SLO classes: one slow worker, batch of 1. The
    // first (deadline-free) request occupies the worker long enough that
    // every deadline-carrying request behind it expires in queue.
    let server = AmsServer::start(
        scheduler(),
        Budget::Deadline { ms: 900 },
        ServeConfig {
            shards: 1,
            workers_per_shard: 1,
            max_batch: 1,
            queue_capacity: 64,
            policy: BackpressurePolicy::Block,
            exec_emulation_scale: 5e-3,
            obs: Some(ObsConfig::default()),
            ..ServeConfig::default()
        },
    );
    let net = NetServer::bind(server, "127.0.0.1:0").expect("bind");
    let remote = NetClient::connect(net.local_addr()).expect("connect");
    // Four deadline-free head requests keep the single worker busy for
    // several real milliseconds (serial batches of 1 under slowed
    // execution) — the doomed wave behind them is guaranteed to age past
    // its 1 ms per-ticket budget while queued.
    let heads = 4u64;
    for item in table.items().iter().take(heads as usize) {
        remote.submit(Arc::new(item.clone())).expect("submit");
    }
    let doomed = 12u64;
    for item in table
        .items()
        .iter()
        .skip(heads as usize)
        .take(doomed as usize)
    {
        remote
            .submit_with(
                Arc::new(item.clone()),
                SubmitOptions::default().deadline_us(1_000),
            )
            .expect("submit");
    }
    let events = remote.drain().expect("drain");
    assert_eq!(events.len() as u64, heads + doomed);
    let mut labeled = 0u64;
    let mut shed_deadline = 0u64;
    for ev in &events {
        match ev.completion().expect("no rejections") {
            Completion::Labeled(r) => {
                labeled += 1;
                assert!(r.ticket < heads, "only the deadline-free heads label");
            }
            Completion::Shed { reason, ticket, .. } => {
                assert_eq!(*reason, ShedReason::Deadline);
                assert!(*ticket >= heads, "sheds are the deadline-carrying wave");
                shed_deadline += 1;
            }
            Completion::Cancelled { .. } => panic!("nothing was cancelled"),
        }
    }
    assert_eq!(labeled, heads);
    assert_eq!(shed_deadline, doomed, "every per-ticket deadline enforced");
    remote.goodbye().expect("goodbye");
    drop(remote);
    let report = net.shutdown();
    assert_eq!(report.shed_deadline, doomed);
    assert!(report.is_conserved());
    assert!(report.events_reconcile());

    // Value override: with SLO classes configured, a wire-supplied value
    // replaces the predicted class-weighted one in the ledgers.
    let server = AmsServer::start(
        scheduler(),
        Budget::Deadline { ms: 900 },
        ServeConfig {
            shards: 1,
            workers_per_shard: 1,
            max_batch: 4,
            queue_capacity: 64,
            policy: BackpressurePolicy::Block,
            slo: Some(SloConfig {
                classes: vec![SloClass::new("only", 60_000, 1.0)],
                admission_control: false,
                value_weighted_shedding: false,
                edf_dequeue: false,
            }),
            ..ServeConfig::default()
        },
    );
    let net = NetServer::bind(server, "127.0.0.1:0").expect("bind");
    let remote = NetClient::connect(net.local_addr()).expect("connect");
    let n = 8u64;
    for item in table.items().iter().take(n as usize) {
        remote
            .submit_with(Arc::new(item.clone()), SubmitOptions::default().value(7.25))
            .expect("submit");
    }
    let events = remote.drain().expect("drain");
    assert_eq!(events.len() as u64, n);
    for ev in &events {
        let r = ev
            .completion()
            .and_then(Completion::labeled)
            .expect("lossless");
        assert_eq!(r.banked_value, 7.25, "per-ticket value banked verbatim");
    }
    remote.goodbye().expect("goodbye");
    drop(remote);
    let report = net.shutdown();
    let slo = report.slo.as_ref().expect("slo ledgers");
    assert!(
        (slo.classes[0].value_offered - 7.25 * n as f64).abs() < 1e-9,
        "ledger saw the wire-supplied value, not the predicted one"
    );
    assert!(slo.is_conserved());
}

/// Cancellation by request id over the wire: unclaimed requests resolve
/// `Cancelled`, and every request still gets exactly one event.
#[test]
fn wire_cancellation_resolves_exactly_once() {
    let table = truth();
    let server = AmsServer::start(
        scheduler(),
        Budget::Deadline { ms: 900 },
        ServeConfig {
            shards: 1,
            workers_per_shard: 1,
            max_batch: 2,
            queue_capacity: 64,
            policy: BackpressurePolicy::Block,
            exec_emulation_scale: 5e-3,
            obs: Some(ObsConfig::default()),
            ..ServeConfig::default()
        },
    );
    let net = NetServer::bind(server, "127.0.0.1:0").expect("bind");
    let remote = NetClient::connect(net.local_addr()).expect("connect");
    let mut ids = Vec::new();
    for item in table.items() {
        ids.push(remote.submit(Arc::new(item.clone())).expect("submit"));
    }
    // Cancel every other request; the race against claims is resolved
    // server-side, exactly like Ticket::cancel.
    for id in ids.iter().skip(1).step_by(2) {
        remote.cancel(*id).expect("cancel");
    }
    let events = remote.drain().expect("drain");
    assert_eq!(events.len(), 40, "exactly one event per request");
    let mut seen: Vec<u64> = events.iter().map(NetEvent::id).collect();
    seen.sort_unstable();
    assert_eq!(seen, ids, "every request id answered exactly once");
    let cancelled = events
        .iter()
        .filter(|e| matches!(e.completion(), Some(Completion::Cancelled { .. })))
        .count();
    assert!(cancelled > 0, "some cancels won the race");
    remote.goodbye().expect("goodbye");
    drop(remote);
    let report = net.shutdown();
    assert_eq!(report.cancelled, cancelled as u64);
    assert!(report.is_conserved());
    assert!(report.events_reconcile());
}
