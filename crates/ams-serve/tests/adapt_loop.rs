//! Online adaptation end-to-end, against the two promises `ams-serve::adapt`
//! makes: with `adapt: None` the serving path is byte-identical to the
//! frozen (pre-adaptation) path under every backpressure policy, and with
//! adaptation on the experience/ swap/ event ledgers all reconcile — the
//! trainer's swaps show up in the event stream, the taps' offers show up
//! in the experience counts, and conservation still holds.

use ams_core::framework::{AdaptiveModelScheduler, Budget};
use ams_core::streaming::{StreamProcessor, StreamStats};
use ams_core::SnapshotPredictor;
use ams_data::{Dataset, DatasetProfile, TruthTable};
use ams_models::ModelZoo;
use ams_rl::{train, AgentSnapshot, Algo, OnlineConfig, TrainConfig, TrainedAgent};
use ams_serve::{AdaptConfig, AmsServer, BackpressurePolicy, EventKind, ObsConfig, ServeConfig};
use std::sync::{Arc, OnceLock};

const BUDGET: Budget = Budget::Deadline { ms: 900 };

/// One boot agent + truth table for every test: training once is the
/// expensive part, and the tests exercise serving, not convergence.
fn fixture() -> &'static (TrainedAgent, TruthTable) {
    static FIXTURE: OnceLock<(TrainedAgent, TruthTable)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let zoo = ModelZoo::standard();
        let ds = Dataset::generate(DatasetProfile::Coco2017, 40, 23);
        let truth = TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5);
        let cfg = TrainConfig {
            episodes: 10,
            ..TrainConfig::fast_test(Algo::Dqn)
        };
        let (agent, _) = train(truth.items(), 30, &cfg);
        (agent, truth)
    })
}

/// A scheduler predicting from the boot agent's generation-0 snapshot —
/// the exact predictor the adaptive path serves until the first swap.
fn frozen_scheduler(agent: &TrainedAgent) -> AdaptiveModelScheduler {
    let zoo = ModelZoo::standard();
    let predictor = Box::new(SnapshotPredictor::new(Arc::new(AgentSnapshot::initial(
        agent.clone(),
    ))));
    AdaptiveModelScheduler::new(zoo, predictor, 0.5, 64)
}

fn frozen_serial_stats() -> StreamStats {
    let (agent, truth) = fixture();
    let mut serial = StreamProcessor::new(frozen_scheduler(agent), BUDGET);
    serial.process_all(truth.items());
    serial.stats().clone()
}

fn assert_stats_match(got: &StreamStats, want: &StreamStats, ctx: &str) {
    assert_eq!(got.items, want.items, "{ctx}: items");
    assert_eq!(got.total_exec_ms, want.total_exec_ms, "{ctx}: exec ms");
    assert_eq!(got.total_executions, want.total_executions, "{ctx}: execs");
    assert_eq!(got.per_model_runs, want.per_model_runs, "{ctx}: per-model");
    assert!(
        (got.recall_sum - want.recall_sum).abs() < 1e-9,
        "{ctx}: recall_sum"
    );
    assert!(
        (got.value_sum - want.value_sum).abs() < 1e-9,
        "{ctx}: value_sum"
    );
}

/// `adapt: None` is the frozen path, bit for bit: serve-mode stats over a
/// lossless stream equal the serial engine's with the same generation-0
/// snapshot predictor, under every backpressure policy, and the report
/// carries no adaptation record.
#[test]
fn adapt_off_is_byte_identical_to_frozen_path_across_policies() {
    let (agent, truth) = fixture();
    let want = frozen_serial_stats();
    for policy in [
        BackpressurePolicy::Block,
        BackpressurePolicy::Reject,
        BackpressurePolicy::ShedOldest,
    ] {
        let cfg = ServeConfig {
            shards: 2,
            workers_per_shard: 2,
            max_batch: 4,
            queue_capacity: 64,
            policy,
            ..ServeConfig::default()
        };
        assert!(cfg.adapt.is_none(), "off is the default");
        let server = AmsServer::start(frozen_scheduler(agent), BUDGET, cfg);
        for item in truth.items() {
            server.submit(Arc::new(item.clone()));
        }
        let report = server.shutdown();
        let ctx = format!("adapt off, {policy:?}");
        assert!(report.adapt.is_none(), "{ctx}: no adaptation record");
        assert_eq!(report.completed, 40, "{ctx}: lossless");
        assert!(report.is_conserved(), "{ctx}");
        assert_stats_match(&report.stats, &want, &ctx);
    }
}

/// Adaptation armed but gated (a warmup the stream can never reach):
/// the workers serve the boot generation forever, so the results still
/// equal the frozen serial run — proof the snapshot path itself changes
/// nothing — while the taps feed every outcome to the trainer and the
/// swap ledgers all read zero.
#[test]
fn warmup_gated_adaptation_serves_boot_weights_unchanged() {
    let (agent, truth) = fixture();
    let want = frozen_serial_stats();
    let mut adapt = AdaptConfig::new(agent.clone()).seed(7);
    adapt.online.warmup = usize::MAX; // never ready, never a learn step
    let cfg = ServeConfig {
        shards: 2,
        workers_per_shard: 2,
        max_batch: 4,
        queue_capacity: 64,
        policy: BackpressurePolicy::Block,
        obs: Some(ObsConfig::default()),
        adapt: Some(adapt),
        ..ServeConfig::default()
    };
    let server = AmsServer::start(frozen_scheduler(agent), BUDGET, cfg);
    for item in truth.items() {
        server.submit(Arc::new(item.clone()));
    }
    let report = server.shutdown();
    assert_eq!(report.completed, 40);
    assert!(report.is_conserved());
    assert_stats_match(&report.stats, &want, "gated adaptation");
    let adapt = report.adapt.as_ref().expect("adaptation record present");
    assert_eq!(adapt.swaps, 0, "warmup never reached");
    assert_eq!(adapt.generation, 0, "boot weights never replaced");
    assert_eq!(adapt.learn_steps, 0);
    assert!(adapt.losses.is_empty());
    assert_eq!(
        adapt.experiences, 40,
        "every completed outcome crossed the tap"
    );
    assert_eq!(adapt.experiences_dropped, 0, "1024-deep channel, 40 items");
    assert!(adapt.transitions >= adapt.experiences, "END transitions");
    // Zero swaps must also reconcile as zero swap *events*.
    assert!(report.events_reconcile(), "{report:?}");
    assert_eq!(
        report
            .obs
            .as_ref()
            .expect("obs report")
            .total(EventKind::WeightsSwapped),
        0
    );
}

/// The closed loop: a live trainer that warms up, learns, and hot-swaps
/// generations into the predict path mid-stream — and every ledger still
/// reconciles: conservation, experience counts, swap events vs swaps,
/// and the `ams_adapt_generation` gauge.
#[test]
fn live_adaptation_swaps_and_every_ledger_reconciles() {
    let (agent, truth) = fixture();
    let adapt = AdaptConfig {
        channel_capacity: 4096,
        online: OnlineConfig {
            warmup: 16,
            batch: 8,
            seed: 42,
            ..OnlineConfig::default()
        },
        steps_per_outcome: 2,
        swap_every: 4,
        agent: agent.clone(),
    };
    let cfg = ServeConfig {
        shards: 1,
        workers_per_shard: 1,
        max_batch: 4,
        queue_capacity: 512,
        policy: BackpressurePolicy::Block,
        obs: Some(ObsConfig::default()),
        adapt: Some(adapt),
        ..ServeConfig::default()
    };
    let server = AmsServer::start(frozen_scheduler(agent), BUDGET, cfg);
    let items: Vec<_> = truth.items().iter().cloned().map(Arc::new).collect();
    for item in items.iter().cycle().take(items.len() * 4) {
        server.submit(Arc::clone(item));
    }
    // The gauge is live while the server runs (0 until the first swap,
    // the published generation after).
    let snap = server.metrics_snapshot().expect("obs is on");
    let live_generation = snap.adapt_generation.expect("gauge present");
    let report = server.shutdown();
    assert_eq!(report.completed, 160);
    assert!(report.is_conserved());
    let adapt = report.adapt.as_ref().expect("adaptation record present");
    assert_eq!(adapt.experiences, 160, "every outcome crossed the tap");
    assert_eq!(adapt.experiences_dropped, 0);
    assert!(adapt.transitions >= adapt.experiences);
    assert!(adapt.learn_steps > 0, "16-transition warmup, 160 outcomes");
    assert!(
        adapt.swaps > 0,
        "2 steps/outcome against swap_every=4 must publish: {adapt:?}"
    );
    assert_eq!(adapt.generation, adapt.swaps, "generations count swaps");
    assert!(live_generation <= adapt.generation, "gauge never ran ahead");
    assert!(!adapt.losses.is_empty());
    assert!(adapt.losses.iter().all(|l| l.is_finite()));
    // Swap events reconcile with the trainer's own count, inside the
    // full event/ledger cross-check.
    assert!(report.events_reconcile(), "{report:?}");
    assert_eq!(
        report
            .obs
            .as_ref()
            .expect("obs report")
            .total(EventKind::WeightsSwapped),
        adapt.swaps
    );
    // The adaptation record rides the serialized report (bench fixtures).
    let json = serde_json::to_string(&report).expect("report serializes");
    let back: ams_serve::ServeReport = serde_json::from_str(&json).expect("parses");
    let back_adapt = back.adapt.expect("adapt survives serde");
    assert_eq!(back_adapt.swaps, adapt.swaps);
    assert_eq!(back_adapt.losses.len(), adapt.losses.len());
}
