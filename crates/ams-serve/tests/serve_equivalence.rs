//! End-to-end serving tests: when backpressure never triggers, serve-mode
//! statistics must equal the serial stream engine's over the same items —
//! across shard counts, worker counts, and batch sizes — and every offered
//! request must be accounted for exactly once under every policy.

use ams_core::framework::{AdaptiveModelScheduler, Budget};
use ams_core::predictor::OraclePredictor;
use ams_core::streaming::{StreamProcessor, StreamStats};
use ams_data::{Dataset, DatasetProfile, ItemTruth, TruthTable};
use ams_models::ModelZoo;
use ams_serve::{
    AdaptiveBatchConfig, AffinityConfig, AmsServer, BackpressurePolicy, Router, RoutingMode,
    ServeConfig, ShardQueue, SloClass, SloConfig, SubmitOutcome,
};
use std::sync::Arc;

fn scheduler() -> AdaptiveModelScheduler {
    let zoo = ModelZoo::standard();
    let predictor = Box::new(OraclePredictor::new(zoo.len(), 0.5));
    AdaptiveModelScheduler::new(zoo, predictor, 0.5, 64)
}

fn truth(items: usize) -> TruthTable {
    let zoo = ModelZoo::standard();
    let ds = Dataset::generate(DatasetProfile::Coco2017, items, 64);
    TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5)
}

fn serial_stats(budget: Budget, table: &TruthTable) -> StreamStats {
    let mut serial = StreamProcessor::new(scheduler(), budget);
    serial.process_all(table.items());
    serial.stats().clone()
}

fn assert_stats_match(got: &StreamStats, want: &StreamStats, ctx: &str) {
    assert_eq!(got.items, want.items, "{ctx}: items");
    assert_eq!(got.total_exec_ms, want.total_exec_ms, "{ctx}: exec ms");
    assert_eq!(got.total_executions, want.total_executions, "{ctx}: execs");
    assert_eq!(got.per_model_runs, want.per_model_runs, "{ctx}: per-model");
    assert_eq!(got.low_recall_items, want.low_recall_items, "{ctx}: alerts");
    assert!(
        (got.recall_sum - want.recall_sum).abs() < 1e-9,
        "{ctx}: recall_sum {} vs {}",
        got.recall_sum,
        want.recall_sum
    );
    assert!(
        (got.value_sum - want.value_sum).abs() < 1e-9,
        "{ctx}: value_sum"
    );
}

/// The acceptance-criterion test: serve-mode stats equal the serial
/// engine's on the same item stream whenever backpressure never triggers,
/// for several shard/worker/batch shapes.
#[test]
fn serve_stats_match_serial_when_nothing_is_shed() {
    let budget = Budget::Deadline { ms: 900 };
    let table = truth(40);
    let want = serial_stats(budget, &table);
    for (shards, workers_per_shard, max_batch) in
        [(1, 1, 1), (1, 4, 8), (3, 1, 4), (4, 2, 8), (8, 1, 1)]
    {
        let cfg = ServeConfig {
            shards,
            workers_per_shard,
            max_batch,
            queue_capacity: 64,
            policy: BackpressurePolicy::Block,
            request_timeout_ms: None,
            ..ServeConfig::default()
        };
        let server = AmsServer::start(scheduler(), budget, cfg);
        let client = server.client();
        for item in table.items() {
            assert!(
                client.submit(Arc::new(item.clone())).ticket().is_some(),
                "lossless config must accept everything"
            );
        }
        let report = server.shutdown();
        let ctx = format!("{shards} shards x {workers_per_shard} workers, batch {max_batch}");
        assert_eq!(report.completed, 40, "{ctx}");
        assert_eq!(
            report.shed_deadline + report.shed_oldest + report.rejected,
            0
        );
        assert!(report.is_conserved(), "{ctx}");
        assert_stats_match(&report.stats, &want, &ctx);
        assert_eq!(report.total.count, 40, "{ctx}: every request timed");
        assert!(report.batches > 0 && report.max_batch_observed <= max_batch);
        // The client view agrees: one Labeled event per ticket, no losses.
        let events = client.drain();
        assert_eq!(events.len(), 40, "{ctx}: exactly-once delivery");
        assert!(
            events.iter().all(|e| e.labeled().is_some()),
            "{ctx}: lossless run only labels"
        );
    }
}

/// Affinity routing changes only *where* requests queue, never what they
/// compute: serve-mode stats stay exactly the serial engine's, the whole
/// stream is accounted through the router, and coalescing never gets
/// worse-than-singleton.
#[test]
fn affinity_routing_preserves_serial_equivalence() {
    let budget = Budget::Deadline { ms: 900 };
    let table = truth(40);
    let want = serial_stats(budget, &table);
    for (shards, workers_per_shard, max_batch) in [(1, 1, 4), (3, 1, 4), (4, 2, 8)] {
        let cfg = ServeConfig {
            shards,
            workers_per_shard,
            max_batch,
            queue_capacity: 64,
            policy: BackpressurePolicy::Block,
            routing: RoutingMode::Affinity(AffinityConfig::default()),
            ..ServeConfig::default()
        };
        let server = AmsServer::start(scheduler(), budget, cfg);
        for item in table.items() {
            assert_ne!(
                server.submit(Arc::new(item.clone())),
                SubmitOutcome::Rejected,
                "lossless affinity config must accept everything"
            );
        }
        let report = server.shutdown();
        let ctx = format!("affinity {shards}x{workers_per_shard}, batch {max_batch}");
        assert_eq!(report.routing, "affinity", "{ctx}");
        assert_eq!(report.completed, 40, "{ctx}");
        assert!(report.is_conserved(), "{ctx}");
        assert_stats_match(&report.stats, &want, &ctx);
        // Every submission went through the router exactly once.
        assert_eq!(report.affinity_hits + report.affinity_spills, 40, "{ctx}");
        assert!(report.affinity_hit_rate() > 0.0, "{ctx}");
        assert!(report.model_invocations > 0, "{ctx}");
        assert!(report.mean_coalesced() >= 1.0, "{ctx}");
    }
}

/// The adaptive controller retunes the batch limit without perturbing the
/// labeling results, and publishes its trajectory.
#[test]
fn adaptive_controller_keeps_stats_exact_and_reports_trajectory() {
    let budget = Budget::Deadline { ms: 900 };
    let table = truth(48);
    let want = serial_stats(budget, &table);
    let cfg = ServeConfig {
        shards: 1,
        workers_per_shard: 1,
        max_batch: 4,
        queue_capacity: 64,
        policy: BackpressurePolicy::Block,
        adaptive: Some(AdaptiveBatchConfig {
            // Generous target: pure simulation latencies sit far below
            // 10 s, so every window complies and the limit can only grow.
            target_p99_ms: 10_000,
            min_batch: 1,
            max_batch: 16,
            window: 8,
            ..AdaptiveBatchConfig::default()
        }),
        ..ServeConfig::default()
    };
    let server = AmsServer::start(scheduler(), budget, cfg);
    for item in table.items() {
        server.submit(Arc::new(item.clone()));
    }
    let report = server.shutdown();
    assert_eq!(report.completed, 48);
    assert_stats_match(&report.stats, &want, "adaptive");
    let adaptive = report.adaptive.expect("controller ran");
    assert_eq!(adaptive.target_p99_ms, 10_000);
    assert_eq!(adaptive.shards.len(), 1);
    let shard = &adaptive.shards[0];
    assert!(
        shard.adjustments > 0,
        "48 items fill several 8-wide windows"
    );
    assert_eq!(shard.trajectory.len(), shard.adjustments as usize);
    assert!(shard.final_max_batch >= 4, "compliant windows only grow");
    assert!(shard.final_max_batch <= 16, "never past the ceiling");
    assert!(shard.within_target);
    assert!(adaptive.all_within_target());
}

/// An impossible target drives the limit down to the floor — the
/// multiplicative-decrease path — and the report says the target was
/// missed rather than pretending otherwise.
#[test]
fn adaptive_controller_decays_to_floor_under_impossible_target() {
    let budget = Budget::Deadline { ms: 900 };
    let table = truth(48);
    let cfg = ServeConfig {
        shards: 1,
        workers_per_shard: 1,
        max_batch: 16,
        queue_capacity: 64,
        policy: BackpressurePolicy::Block,
        // Make execution take real wall time so a 0 ms target must fail.
        exec_emulation_scale: 1e-3,
        adaptive: Some(AdaptiveBatchConfig {
            target_p99_ms: 0,
            min_batch: 2,
            max_batch: 16,
            window: 8,
            ..AdaptiveBatchConfig::default()
        }),
        ..ServeConfig::default()
    };
    let server = AmsServer::start(scheduler(), budget, cfg);
    for item in table.items() {
        server.submit(Arc::new(item.clone()));
    }
    let report = server.shutdown();
    assert_eq!(report.completed, 48, "latency control never drops work");
    let adaptive = report.adaptive.expect("controller ran");
    let shard = &adaptive.shards[0];
    assert_eq!(shard.final_max_batch, 2, "decayed to the configured floor");
    assert!(
        !shard.within_target,
        "an impossible target is reported missed"
    );
    assert!(
        shard.trajectory.windows(2).all(|w| w[1] <= w[0]),
        "violations only shrink the limit: {:?}",
        shard.trajectory
    );
}

/// Batched admission compresses virtual execution: the sum of batch
/// makespans never exceeds the serial sum of the same items' execution
/// times, and the compression is strict once real coalescing happens.
#[test]
fn batched_admission_compresses_virtual_exec_time() {
    let budget = Budget::Deadline { ms: 900 };
    let table = truth(48);
    let cfg = ServeConfig {
        shards: 1,
        workers_per_shard: 1,
        max_batch: 16,
        queue_capacity: 64,
        policy: BackpressurePolicy::Block,
        ..ServeConfig::default()
    };
    let server = AmsServer::start(scheduler(), budget, cfg);
    for item in table.items() {
        server.submit(Arc::new(item.clone()));
    }
    let report = server.shutdown();
    assert_eq!(report.completed, 48);
    assert!(
        report.virtual_exec_ms <= report.stats.total_exec_ms,
        "batching can only compress: {} > {}",
        report.virtual_exec_ms,
        report.stats.total_exec_ms
    );
    assert!(report.virtual_exec_ms > 0);
}

/// Reject policy on a tiny queue with no workers draining fast enough:
/// rejections surface to the submitter and the ledger still balances.
#[test]
fn reject_policy_accounts_for_every_request() {
    let budget = Budget::Deadline { ms: 900 };
    let table = truth(60);
    let cfg = ServeConfig {
        shards: 1,
        workers_per_shard: 1,
        queue_capacity: 2,
        max_batch: 2,
        policy: BackpressurePolicy::Reject,
        // Slow the worker so the queue genuinely fills.
        exec_emulation_scale: 5e-3,
        ..ServeConfig::default()
    };
    let server = AmsServer::start(scheduler(), budget, cfg);
    let mut rejected = 0u64;
    for item in table.items() {
        if server.submit(Arc::new(item.clone())) == SubmitOutcome::Rejected {
            rejected += 1;
        }
    }
    let report = server.shutdown();
    assert_eq!(report.rejected, rejected);
    assert!(report.rejected > 0, "a 2-deep queue must overflow");
    assert!(report.is_conserved());
    assert_eq!(report.completed + report.rejected, 60);
    assert!(report.shed_rate() > 0.0);
}

/// ShedOldest policy: the queue stays fresh by dropping its head; sheds
/// are counted and the ledger balances.
#[test]
fn shed_oldest_policy_keeps_admitting() {
    let budget = Budget::Deadline { ms: 900 };
    let table = truth(60);
    let cfg = ServeConfig {
        shards: 1,
        workers_per_shard: 1,
        queue_capacity: 2,
        max_batch: 2,
        policy: BackpressurePolicy::ShedOldest,
        exec_emulation_scale: 5e-3,
        ..ServeConfig::default()
    };
    let server = AmsServer::start(scheduler(), budget, cfg);
    for item in table.items() {
        assert_ne!(
            server.submit(Arc::new(item.clone())),
            SubmitOutcome::Rejected,
            "shed-oldest always admits while open"
        );
    }
    let report = server.shutdown();
    assert!(report.shed_oldest > 0, "a 2-deep queue must shed");
    assert_eq!(report.rejected, 0);
    assert!(report.is_conserved());
    assert_eq!(report.completed + report.shed_oldest, 60);
}

/// A request shed after partial batch admission (popped in a batch, then
/// dropped by the deadline check while its batch-mates execute) is counted
/// exactly once in the shed ledger and never enters the recall denominator
/// or the latency histograms.
#[test]
fn partial_batch_shed_counted_once_and_excluded_from_recall() {
    let budget = Budget::Deadline { ms: 900 };
    let table = truth(60);
    let cfg = ServeConfig {
        shards: 1,
        workers_per_shard: 1,
        queue_capacity: 64,
        max_batch: 8,
        policy: BackpressurePolicy::Block,
        // Each batch's emulated execution takes tens of wall ms, so
        // requests queued behind it age past the timeout while the ones
        // popped fresh survive — mixed batches, the partial-shed shape.
        request_timeout_ms: Some(40),
        exec_emulation_scale: 5e-3,
        ..ServeConfig::default()
    };
    let server = AmsServer::start(scheduler(), budget, cfg);
    for item in table.items() {
        server.submit(Arc::new(item.clone()));
    }
    let report = server.shutdown();
    assert!(report.shed_deadline > 0, "the backlog must age past 40ms");
    assert!(report.completed > 0, "fresh requests must survive");
    // Exactly-once ledger: every offered request is in precisely one bucket.
    assert!(report.is_conserved());
    assert_eq!(report.completed + report.shed_deadline, 60);
    // Never in the recall denominator: stats cover completed requests only,
    // so mean_recall is over survivors, not shed work.
    assert_eq!(report.stats.items as u64, report.completed);
    let runs: u64 = report.stats.per_model_runs.iter().sum();
    assert_eq!(runs as usize, report.stats.total_executions);
    assert!(report.stats.mean_recall() > 0.0 && report.stats.mean_recall() <= 1.0);
    // Never in the telemetry either: one histogram entry per completion.
    assert_eq!(report.queue_wait.count, report.completed);
    assert_eq!(report.execute.count, report.completed);
    assert_eq!(report.total.count, report.completed);
    // Executed-batch accounting ignores all-shed rounds.
    assert!(report.mean_batch_size() >= 1.0);
    assert!(report.batches <= report.completed);
}

/// `AmsServer::shard_of` and the hash router answer from the same
/// `fib_shard` — the placement function is shared, so the constants
/// cannot drift between the accessor and the live routing path.
#[test]
fn shard_of_matches_the_hash_routers_placement() {
    let budget = Budget::Deadline { ms: 900 };
    let table = truth(24);
    for shards in [1usize, 2, 4, 7] {
        let sched = scheduler();
        let router = Router::new(RoutingMode::Hash, shards);
        let queues: Vec<ShardQueue> = (0..shards)
            .map(|_| ShardQueue::new(8, BackpressurePolicy::Reject))
            .collect();
        let server = AmsServer::start(
            scheduler(),
            budget,
            ServeConfig {
                shards,
                ..ServeConfig::default()
            },
        );
        for item in table.items() {
            let fp = router.fingerprint(&sched, item, false);
            assert_eq!(
                server.shard_of(item),
                router.route(&fp, item, &queues, None).shard,
                "scene {} with {shards} shards",
                item.scene_id
            );
        }
        server.shutdown();
    }
}

/// Two SLO classes routed through every backpressure policy: the
/// admission-time shed path and value-weighted eviction keep the ledger
/// exactly-once — globally, per class, and in value terms.
#[test]
fn slo_shedding_conserves_every_request_across_policies() {
    let budget = Budget::Deadline { ms: 900 };
    let table = truth(60);
    for policy in [
        BackpressurePolicy::Block,
        BackpressurePolicy::Reject,
        BackpressurePolicy::ShedOldest,
    ] {
        let cfg = ServeConfig {
            shards: 1,
            workers_per_shard: 1,
            queue_capacity: 2,
            max_batch: 2,
            policy,
            // Real wall time per batch (tens of ms), so queues build, the
            // amortized estimate is far above the interactive budget, and
            // a 2 ms deadline is hopeless once anything is queued ahead.
            exec_emulation_scale: 2e-2,
            slo: Some(SloConfig::aware(vec![
                SloClass::new("interactive", 2, 4.0),
                SloClass::new("bulk", 10_000, 1.0),
            ])),
            ..ServeConfig::default()
        };
        let server = AmsServer::start(scheduler(), budget, cfg);
        let mut outcomes = [0u64; 5];
        let mut offered_by_class = [0u64; 2];
        {
            let mut submit = |item: &ItemTruth, class: usize| {
                let idx = match server.submit_class(Arc::new(item.clone()), class) {
                    SubmitOutcome::Enqueued(()) => 0,
                    SubmitOutcome::EnqueuedShedOldest(()) => 1,
                    SubmitOutcome::Rejected => 2,
                    SubmitOutcome::ShedAdmission(()) => 3,
                    SubmitOutcome::ShedIncoming(()) => 4,
                    SubmitOutcome::Cached(()) | SubmitOutcome::Coalesced(()) => {
                        unreachable!("cache is off in this config")
                    }
                };
                outcomes[idx] += 1;
                offered_by_class[class] += 1;
            };
            // Warm-up: paced bulk submissions, so at least one batch
            // executes and the workers publish the amortized-time signal
            // admission control prices with (before the first execution
            // there is no evidence, so nothing is shed at admission).
            for item in table.items().iter().take(10) {
                std::thread::sleep(std::time::Duration::from_millis(2));
                submit(item, 1);
            }
            std::thread::sleep(std::time::Duration::from_millis(40));
            // Flood: the rest arrives back to back. The worker is
            // mid-batch for milliseconds at a time while submissions land
            // in microseconds, so the queue genuinely backs up — and with
            // the published amortized time far above the 2 ms interactive
            // budget, an interactive request behind *any* earlier-deadline
            // backlog (or facing a full queue) is provably doomed and must
            // be shed at admission, not queued.
            for (i, item) in table.items().iter().enumerate().skip(10) {
                submit(item, i % 2);
            }
        }
        let report = server.shutdown();
        let ctx = format!("policy {policy:?}");
        assert!(report.is_conserved(), "{ctx}: {report:?}");
        assert_eq!(report.offered, 60, "{ctx}");
        assert_eq!(
            report.shed_admission, outcomes[3],
            "{ctx}: admission sheds surface to the submitter"
        );
        assert_eq!(report.rejected, outcomes[2], "{ctx}");
        assert!(
            report.shed_admission > 0,
            "{ctx}: a 2 ms class budget against tens-of-ms batches must \
             trip admission control once the amortized estimate exists"
        );
        let slo = report.slo.as_ref().expect("slo ledger present");
        assert!(slo.is_conserved(), "{ctx}: every class ledger balances");
        assert_eq!(slo.classes.len(), 2, "{ctx}");
        let offered: u64 = slo.classes.iter().map(|c| c.offered).sum();
        assert_eq!(offered, 60, "{ctx}: every submission classed");
        for c in &slo.classes {
            assert_eq!(
                c.offered, offered_by_class[c.class],
                "{ctx}: every submission classed as submitted"
            );
            // Value conservation: offered value = banked + lost, to float
            // sum tolerance.
            assert!(
                (c.value_offered - c.value_completed - c.value_shed).abs() < 1e-6,
                "{ctx} class {}: {} != {} + {}",
                c.name,
                c.value_offered,
                c.value_completed,
                c.value_shed
            );
            assert!(c.deadline_met <= c.completed, "{ctx}");
        }
        // The global ledger and the class ledgers agree bucket by bucket.
        assert_eq!(
            slo.classes.iter().map(|c| c.completed).sum::<u64>(),
            report.completed,
            "{ctx}"
        );
        assert_eq!(
            slo.classes.iter().map(|c| c.shed_admission).sum::<u64>(),
            report.shed_admission,
            "{ctx}"
        );
        assert_eq!(
            slo.classes.iter().map(|c| c.shed_oldest).sum::<u64>(),
            report.shed_oldest,
            "{ctx}"
        );
        assert_eq!(
            slo.classes.iter().map(|c| c.shed_deadline).sum::<u64>(),
            report.shed_deadline,
            "{ctx}"
        );
        assert_eq!(
            slo.classes.iter().map(|c| c.rejected).sum::<u64>(),
            report.rejected,
            "{ctx}"
        );
    }
}

/// Blind SLO mode (classes tracked, behaviors off) on a lossless blocking
/// configuration: scheduling is untouched — serve stats still equal the
/// serial engine's — while the per-class ledger records every completion
/// and every generous deadline as met.
#[test]
fn blind_slo_mode_tracks_classes_without_perturbing_results() {
    let budget = Budget::Deadline { ms: 900 };
    let table = truth(40);
    let want = serial_stats(budget, &table);
    let cfg = ServeConfig {
        shards: 2,
        workers_per_shard: 2,
        max_batch: 4,
        queue_capacity: 64,
        policy: BackpressurePolicy::Block,
        slo: Some(SloConfig::blind(vec![
            SloClass::new("interactive", 60_000, 3.0),
            SloClass::new("bulk", 60_000, 1.0),
        ])),
        ..ServeConfig::default()
    };
    let server = AmsServer::start(scheduler(), budget, cfg);
    for (i, item) in table.items().iter().enumerate() {
        assert_eq!(
            server.submit_class(Arc::new(item.clone()), i % 2),
            SubmitOutcome::Enqueued(()),
            "lossless blind config admits everything"
        );
    }
    let report = server.shutdown();
    assert!(report.is_conserved());
    assert_eq!(report.completed, 40);
    assert_eq!(report.shed_admission, 0, "admission control is off");
    assert_stats_match(&report.stats, &want, "blind slo");
    // The full SLO report survives serde for the bench records.
    let json = serde_json::to_string(&report).expect("serializes");
    let slo = report.slo.expect("ledger present");
    assert!(!slo.admission_control && !slo.value_weighted_shedding && !slo.edf_dequeue);
    assert!(slo.is_conserved());
    assert!(
        (slo.deadline_met_rate() - 1.0).abs() < 1e-12,
        "60 s budgets"
    );
    assert!(slo.value_shed_loss() == 0.0, "nothing shed, nothing lost");
    assert!(slo.value_completed() > 0.0, "banked value recorded");
    // Class weights scale banked value: equal item splits, 3x weight.
    let per_item_0 = slo.classes[0].value_completed / slo.classes[0].completed as f64;
    let per_item_1 = slo.classes[1].value_completed / slo.classes[1].completed as f64;
    assert!(
        per_item_0 > per_item_1,
        "weight-3 class banks more per item: {per_item_0} vs {per_item_1}"
    );
    let back: ams_serve::ServeReport = serde_json::from_str(&json).expect("parses");
    let back_slo = back.slo.expect("slo survives");
    assert_eq!(back_slo.classes.len(), 2);
    assert_eq!(back_slo.classes[0].name, "interactive");
    assert_eq!(back_slo.classes[0].completed, slo.classes[0].completed);
    assert!((back_slo.value_shed_loss() - slo.value_shed_loss()).abs() < 1e-12);
}

/// Deadline-aware shedding: with a zero timeout every dequeued request is
/// already expired, so everything is shed and nothing is executed.
#[test]
fn zero_timeout_sheds_every_request_at_dequeue() {
    let budget = Budget::Deadline { ms: 900 };
    let table = truth(20);
    let cfg = ServeConfig {
        shards: 2,
        request_timeout_ms: Some(0),
        ..ServeConfig::default()
    };
    let server = AmsServer::start(scheduler(), budget, cfg);
    for item in table.items() {
        server.submit(Arc::new(item.clone()));
    }
    let report = server.shutdown();
    assert_eq!(report.shed_deadline, 20);
    assert_eq!(report.completed, 0);
    assert_eq!(report.stats.items, 0);
    assert!(report.is_conserved());
    assert!((report.shed_rate() - 1.0).abs() < 1e-12);
}

/// Graceful drain: everything accepted before shutdown is processed, and
/// submissions after shutdown-close are rejected (observed via a queue
/// closed mid-stream — the server consumes itself on shutdown, so the
/// post-shutdown path is exercised through the conservation ledger).
#[test]
fn shutdown_drains_backlog_and_latency_split_is_recorded() {
    let budget = Budget::Deadline { ms: 900 };
    let table = truth(32);
    let cfg = ServeConfig {
        shards: 2,
        workers_per_shard: 1,
        queue_capacity: 32,
        max_batch: 4,
        policy: BackpressurePolicy::Block,
        exec_emulation_scale: 1e-3,
        ..ServeConfig::default()
    };
    let server = AmsServer::start(scheduler(), budget, cfg);
    for item in table.items() {
        server.submit(Arc::new(item.clone()));
    }
    let report = server.shutdown();
    assert_eq!(report.completed, 32, "backlog drained, not dropped");
    assert_eq!(report.queue_wait.count, 32);
    assert_eq!(report.execute.count, 32);
    assert_eq!(report.total.count, 32);
    // The latency split is internally consistent: total >= each part.
    assert!(report.total.p50_us >= report.queue_wait.p50_us.min(report.execute.p50_us));
    assert!(report.total.max_us >= report.execute.max_us);
    assert!(report.total.max_us >= report.queue_wait.max_us);
    assert!(
        report.execute.mean_us > 0.0,
        "emulated execution takes time"
    );
    // And the report serializes for the bench harness.
    let json = serde_json::to_string(&report).expect("report serializes");
    let back: ams_serve::ServeReport = serde_json::from_str(&json).expect("parses");
    assert_eq!(back.completed, 32);
    assert_eq!(back.policy, "block");
}
