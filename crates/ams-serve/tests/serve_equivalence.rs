//! End-to-end serving tests: when backpressure never triggers, serve-mode
//! statistics must equal the serial stream engine's over the same items —
//! across shard counts, worker counts, and batch sizes — and every offered
//! request must be accounted for exactly once under every policy.

use ams_core::framework::{AdaptiveModelScheduler, Budget};
use ams_core::predictor::OraclePredictor;
use ams_core::streaming::{StreamProcessor, StreamStats};
use ams_data::{Dataset, DatasetProfile, TruthTable};
use ams_models::ModelZoo;
use ams_serve::{
    AdaptiveBatchConfig, AffinityConfig, AmsServer, BackpressurePolicy, RoutingMode, ServeConfig,
    SubmitOutcome,
};
use std::sync::Arc;

fn scheduler() -> AdaptiveModelScheduler {
    let zoo = ModelZoo::standard();
    let predictor = Box::new(OraclePredictor::new(zoo.len(), 0.5));
    AdaptiveModelScheduler::new(zoo, predictor, 0.5, 64)
}

fn truth(items: usize) -> TruthTable {
    let zoo = ModelZoo::standard();
    let ds = Dataset::generate(DatasetProfile::Coco2017, items, 64);
    TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5)
}

fn serial_stats(budget: Budget, table: &TruthTable) -> StreamStats {
    let mut serial = StreamProcessor::new(scheduler(), budget);
    serial.process_all(table.items());
    serial.stats().clone()
}

fn assert_stats_match(got: &StreamStats, want: &StreamStats, ctx: &str) {
    assert_eq!(got.items, want.items, "{ctx}: items");
    assert_eq!(got.total_exec_ms, want.total_exec_ms, "{ctx}: exec ms");
    assert_eq!(got.total_executions, want.total_executions, "{ctx}: execs");
    assert_eq!(got.per_model_runs, want.per_model_runs, "{ctx}: per-model");
    assert_eq!(got.low_recall_items, want.low_recall_items, "{ctx}: alerts");
    assert!(
        (got.recall_sum - want.recall_sum).abs() < 1e-9,
        "{ctx}: recall_sum {} vs {}",
        got.recall_sum,
        want.recall_sum
    );
    assert!(
        (got.value_sum - want.value_sum).abs() < 1e-9,
        "{ctx}: value_sum"
    );
}

/// The acceptance-criterion test: serve-mode stats equal the serial
/// engine's on the same item stream whenever backpressure never triggers,
/// for several shard/worker/batch shapes.
#[test]
fn serve_stats_match_serial_when_nothing_is_shed() {
    let budget = Budget::Deadline { ms: 900 };
    let table = truth(40);
    let want = serial_stats(budget, &table);
    for (shards, workers_per_shard, max_batch) in
        [(1, 1, 1), (1, 4, 8), (3, 1, 4), (4, 2, 8), (8, 1, 1)]
    {
        let cfg = ServeConfig {
            shards,
            workers_per_shard,
            max_batch,
            queue_capacity: 64,
            policy: BackpressurePolicy::Block,
            request_timeout_ms: None,
            ..ServeConfig::default()
        };
        let server = AmsServer::start(scheduler(), budget, cfg);
        for item in table.items() {
            assert_ne!(
                server.submit(Arc::new(item.clone())),
                SubmitOutcome::Rejected,
                "lossless config must accept everything"
            );
        }
        let report = server.shutdown();
        let ctx = format!("{shards} shards x {workers_per_shard} workers, batch {max_batch}");
        assert_eq!(report.completed, 40, "{ctx}");
        assert_eq!(
            report.shed_deadline + report.shed_oldest + report.rejected,
            0
        );
        assert!(report.is_conserved(), "{ctx}");
        assert_stats_match(&report.stats, &want, &ctx);
        assert_eq!(report.total.count, 40, "{ctx}: every request timed");
        assert!(report.batches > 0 && report.max_batch_observed <= max_batch);
    }
}

/// Affinity routing changes only *where* requests queue, never what they
/// compute: serve-mode stats stay exactly the serial engine's, the whole
/// stream is accounted through the router, and coalescing never gets
/// worse-than-singleton.
#[test]
fn affinity_routing_preserves_serial_equivalence() {
    let budget = Budget::Deadline { ms: 900 };
    let table = truth(40);
    let want = serial_stats(budget, &table);
    for (shards, workers_per_shard, max_batch) in [(1, 1, 4), (3, 1, 4), (4, 2, 8)] {
        let cfg = ServeConfig {
            shards,
            workers_per_shard,
            max_batch,
            queue_capacity: 64,
            policy: BackpressurePolicy::Block,
            routing: RoutingMode::Affinity(AffinityConfig::default()),
            ..ServeConfig::default()
        };
        let server = AmsServer::start(scheduler(), budget, cfg);
        for item in table.items() {
            assert_ne!(
                server.submit(Arc::new(item.clone())),
                SubmitOutcome::Rejected,
                "lossless affinity config must accept everything"
            );
        }
        let report = server.shutdown();
        let ctx = format!("affinity {shards}x{workers_per_shard}, batch {max_batch}");
        assert_eq!(report.routing, "affinity", "{ctx}");
        assert_eq!(report.completed, 40, "{ctx}");
        assert!(report.is_conserved(), "{ctx}");
        assert_stats_match(&report.stats, &want, &ctx);
        // Every submission went through the router exactly once.
        assert_eq!(report.affinity_hits + report.affinity_spills, 40, "{ctx}");
        assert!(report.affinity_hit_rate() > 0.0, "{ctx}");
        assert!(report.model_invocations > 0, "{ctx}");
        assert!(report.mean_coalesced() >= 1.0, "{ctx}");
    }
}

/// The adaptive controller retunes the batch limit without perturbing the
/// labeling results, and publishes its trajectory.
#[test]
fn adaptive_controller_keeps_stats_exact_and_reports_trajectory() {
    let budget = Budget::Deadline { ms: 900 };
    let table = truth(48);
    let want = serial_stats(budget, &table);
    let cfg = ServeConfig {
        shards: 1,
        workers_per_shard: 1,
        max_batch: 4,
        queue_capacity: 64,
        policy: BackpressurePolicy::Block,
        adaptive: Some(AdaptiveBatchConfig {
            // Generous target: pure simulation latencies sit far below
            // 10 s, so every window complies and the limit can only grow.
            target_p99_ms: 10_000,
            min_batch: 1,
            max_batch: 16,
            window: 8,
            ..AdaptiveBatchConfig::default()
        }),
        ..ServeConfig::default()
    };
    let server = AmsServer::start(scheduler(), budget, cfg);
    for item in table.items() {
        server.submit(Arc::new(item.clone()));
    }
    let report = server.shutdown();
    assert_eq!(report.completed, 48);
    assert_stats_match(&report.stats, &want, "adaptive");
    let adaptive = report.adaptive.expect("controller ran");
    assert_eq!(adaptive.target_p99_ms, 10_000);
    assert_eq!(adaptive.shards.len(), 1);
    let shard = &adaptive.shards[0];
    assert!(
        shard.adjustments > 0,
        "48 items fill several 8-wide windows"
    );
    assert_eq!(shard.trajectory.len(), shard.adjustments as usize);
    assert!(shard.final_max_batch >= 4, "compliant windows only grow");
    assert!(shard.final_max_batch <= 16, "never past the ceiling");
    assert!(shard.within_target);
    assert!(adaptive.all_within_target());
}

/// An impossible target drives the limit down to the floor — the
/// multiplicative-decrease path — and the report says the target was
/// missed rather than pretending otherwise.
#[test]
fn adaptive_controller_decays_to_floor_under_impossible_target() {
    let budget = Budget::Deadline { ms: 900 };
    let table = truth(48);
    let cfg = ServeConfig {
        shards: 1,
        workers_per_shard: 1,
        max_batch: 16,
        queue_capacity: 64,
        policy: BackpressurePolicy::Block,
        // Make execution take real wall time so a 0 ms target must fail.
        exec_emulation_scale: 1e-3,
        adaptive: Some(AdaptiveBatchConfig {
            target_p99_ms: 0,
            min_batch: 2,
            max_batch: 16,
            window: 8,
            ..AdaptiveBatchConfig::default()
        }),
        ..ServeConfig::default()
    };
    let server = AmsServer::start(scheduler(), budget, cfg);
    for item in table.items() {
        server.submit(Arc::new(item.clone()));
    }
    let report = server.shutdown();
    assert_eq!(report.completed, 48, "latency control never drops work");
    let adaptive = report.adaptive.expect("controller ran");
    let shard = &adaptive.shards[0];
    assert_eq!(shard.final_max_batch, 2, "decayed to the configured floor");
    assert!(
        !shard.within_target,
        "an impossible target is reported missed"
    );
    assert!(
        shard.trajectory.windows(2).all(|w| w[1] <= w[0]),
        "violations only shrink the limit: {:?}",
        shard.trajectory
    );
}

/// Batched admission compresses virtual execution: the sum of batch
/// makespans never exceeds the serial sum of the same items' execution
/// times, and the compression is strict once real coalescing happens.
#[test]
fn batched_admission_compresses_virtual_exec_time() {
    let budget = Budget::Deadline { ms: 900 };
    let table = truth(48);
    let cfg = ServeConfig {
        shards: 1,
        workers_per_shard: 1,
        max_batch: 16,
        queue_capacity: 64,
        policy: BackpressurePolicy::Block,
        ..ServeConfig::default()
    };
    let server = AmsServer::start(scheduler(), budget, cfg);
    for item in table.items() {
        server.submit(Arc::new(item.clone()));
    }
    let report = server.shutdown();
    assert_eq!(report.completed, 48);
    assert!(
        report.virtual_exec_ms <= report.stats.total_exec_ms,
        "batching can only compress: {} > {}",
        report.virtual_exec_ms,
        report.stats.total_exec_ms
    );
    assert!(report.virtual_exec_ms > 0);
}

/// Reject policy on a tiny queue with no workers draining fast enough:
/// rejections surface to the submitter and the ledger still balances.
#[test]
fn reject_policy_accounts_for_every_request() {
    let budget = Budget::Deadline { ms: 900 };
    let table = truth(60);
    let cfg = ServeConfig {
        shards: 1,
        workers_per_shard: 1,
        queue_capacity: 2,
        max_batch: 2,
        policy: BackpressurePolicy::Reject,
        // Slow the worker so the queue genuinely fills.
        exec_emulation_scale: 5e-3,
        ..ServeConfig::default()
    };
    let server = AmsServer::start(scheduler(), budget, cfg);
    let mut rejected = 0u64;
    for item in table.items() {
        if server.submit(Arc::new(item.clone())) == SubmitOutcome::Rejected {
            rejected += 1;
        }
    }
    let report = server.shutdown();
    assert_eq!(report.rejected, rejected);
    assert!(report.rejected > 0, "a 2-deep queue must overflow");
    assert!(report.is_conserved());
    assert_eq!(report.completed + report.rejected, 60);
    assert!(report.shed_rate() > 0.0);
}

/// ShedOldest policy: the queue stays fresh by dropping its head; sheds
/// are counted and the ledger balances.
#[test]
fn shed_oldest_policy_keeps_admitting() {
    let budget = Budget::Deadline { ms: 900 };
    let table = truth(60);
    let cfg = ServeConfig {
        shards: 1,
        workers_per_shard: 1,
        queue_capacity: 2,
        max_batch: 2,
        policy: BackpressurePolicy::ShedOldest,
        exec_emulation_scale: 5e-3,
        ..ServeConfig::default()
    };
    let server = AmsServer::start(scheduler(), budget, cfg);
    for item in table.items() {
        assert_ne!(
            server.submit(Arc::new(item.clone())),
            SubmitOutcome::Rejected,
            "shed-oldest always admits while open"
        );
    }
    let report = server.shutdown();
    assert!(report.shed_oldest > 0, "a 2-deep queue must shed");
    assert_eq!(report.rejected, 0);
    assert!(report.is_conserved());
    assert_eq!(report.completed + report.shed_oldest, 60);
}

/// A request shed after partial batch admission (popped in a batch, then
/// dropped by the deadline check while its batch-mates execute) is counted
/// exactly once in the shed ledger and never enters the recall denominator
/// or the latency histograms.
#[test]
fn partial_batch_shed_counted_once_and_excluded_from_recall() {
    let budget = Budget::Deadline { ms: 900 };
    let table = truth(60);
    let cfg = ServeConfig {
        shards: 1,
        workers_per_shard: 1,
        queue_capacity: 64,
        max_batch: 8,
        policy: BackpressurePolicy::Block,
        // Each batch's emulated execution takes tens of wall ms, so
        // requests queued behind it age past the timeout while the ones
        // popped fresh survive — mixed batches, the partial-shed shape.
        request_timeout_ms: Some(40),
        exec_emulation_scale: 5e-3,
        ..ServeConfig::default()
    };
    let server = AmsServer::start(scheduler(), budget, cfg);
    for item in table.items() {
        server.submit(Arc::new(item.clone()));
    }
    let report = server.shutdown();
    assert!(report.shed_deadline > 0, "the backlog must age past 40ms");
    assert!(report.completed > 0, "fresh requests must survive");
    // Exactly-once ledger: every offered request is in precisely one bucket.
    assert!(report.is_conserved());
    assert_eq!(report.completed + report.shed_deadline, 60);
    // Never in the recall denominator: stats cover completed requests only,
    // so mean_recall is over survivors, not shed work.
    assert_eq!(report.stats.items as u64, report.completed);
    let runs: u64 = report.stats.per_model_runs.iter().sum();
    assert_eq!(runs as usize, report.stats.total_executions);
    assert!(report.stats.mean_recall() > 0.0 && report.stats.mean_recall() <= 1.0);
    // Never in the telemetry either: one histogram entry per completion.
    assert_eq!(report.queue_wait.count, report.completed);
    assert_eq!(report.execute.count, report.completed);
    assert_eq!(report.total.count, report.completed);
    // Executed-batch accounting ignores all-shed rounds.
    assert!(report.mean_batch_size() >= 1.0);
    assert!(report.batches <= report.completed);
}

/// Deadline-aware shedding: with a zero timeout every dequeued request is
/// already expired, so everything is shed and nothing is executed.
#[test]
fn zero_timeout_sheds_every_request_at_dequeue() {
    let budget = Budget::Deadline { ms: 900 };
    let table = truth(20);
    let cfg = ServeConfig {
        shards: 2,
        request_timeout_ms: Some(0),
        ..ServeConfig::default()
    };
    let server = AmsServer::start(scheduler(), budget, cfg);
    for item in table.items() {
        server.submit(Arc::new(item.clone()));
    }
    let report = server.shutdown();
    assert_eq!(report.shed_deadline, 20);
    assert_eq!(report.completed, 0);
    assert_eq!(report.stats.items, 0);
    assert!(report.is_conserved());
    assert!((report.shed_rate() - 1.0).abs() < 1e-12);
}

/// Graceful drain: everything accepted before shutdown is processed, and
/// submissions after shutdown-close are rejected (observed via a queue
/// closed mid-stream — the server consumes itself on shutdown, so the
/// post-shutdown path is exercised through the conservation ledger).
#[test]
fn shutdown_drains_backlog_and_latency_split_is_recorded() {
    let budget = Budget::Deadline { ms: 900 };
    let table = truth(32);
    let cfg = ServeConfig {
        shards: 2,
        workers_per_shard: 1,
        queue_capacity: 32,
        max_batch: 4,
        policy: BackpressurePolicy::Block,
        exec_emulation_scale: 1e-3,
        ..ServeConfig::default()
    };
    let server = AmsServer::start(scheduler(), budget, cfg);
    for item in table.items() {
        server.submit(Arc::new(item.clone()));
    }
    let report = server.shutdown();
    assert_eq!(report.completed, 32, "backlog drained, not dropped");
    assert_eq!(report.queue_wait.count, 32);
    assert_eq!(report.execute.count, 32);
    assert_eq!(report.total.count, 32);
    // The latency split is internally consistent: total >= each part.
    assert!(report.total.p50_us >= report.queue_wait.p50_us.min(report.execute.p50_us));
    assert!(report.total.max_us >= report.execute.max_us);
    assert!(report.total.max_us >= report.queue_wait.max_us);
    assert!(
        report.execute.mean_us > 0.0,
        "emulated execution takes time"
    );
    // And the report serializes for the bench harness.
    let json = serde_json::to_string(&report).expect("report serializes");
    let back: ams_serve::ServeReport = serde_json::from_str(&json).expect("parses");
    assert_eq!(back.completed, 32);
    assert_eq!(back.policy, "block");
}
