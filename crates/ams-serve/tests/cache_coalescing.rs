//! The content-addressed label cache, end to end through the client API:
//! exact hits answered before admission, in-flight coalescing with fan-out
//! on the leader's completion, ghost execution when a cancelled leader
//! still has waiters — and the exactly-once / conservation invariants
//! (now including the `cache_hit` and `coalesced` buckets) under
//! cancellation storms across every backpressure policy.

use ams_core::framework::{AdaptiveModelScheduler, Budget};
use ams_core::predictor::OraclePredictor;
use ams_data::{Dataset, DatasetProfile, TruthTable};
use ams_models::ModelZoo;
use ams_serve::{
    AmsServer, BackpressurePolicy, CacheConfig, Completion, ServeConfig, SloClass, SloConfig,
    SubmitOutcome, Ticket,
};
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::{Arc, OnceLock};

fn scheduler() -> AdaptiveModelScheduler {
    let zoo = ModelZoo::standard();
    let predictor = Box::new(OraclePredictor::new(zoo.len(), 0.5));
    AdaptiveModelScheduler::new(zoo, predictor, 0.5, 64)
}

fn truth() -> &'static TruthTable {
    static TRUTH: OnceLock<TruthTable> = OnceLock::new();
    TRUTH.get_or_init(|| {
        let zoo = ModelZoo::standard();
        let ds = Dataset::generate(DatasetProfile::Coco2017, 40, 64);
        TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5)
    })
}

/// Count events by kind: (labeled, shed, cancelled).
fn tally(events: &[Completion]) -> (u64, u64, u64) {
    let mut t = (0u64, 0u64, 0u64);
    for ev in events {
        match ev {
            Completion::Labeled(_) => t.0 += 1,
            Completion::Shed { .. } => t.1 += 1,
            Completion::Cancelled { .. } => t.2 += 1,
        }
    }
    t
}

/// A repetitive stream through the cache is lossless and deduplicated:
/// every repeat is answered as a hit or coalesces onto the in-flight
/// leader — never executed twice — and every delivered `Labeled` event
/// carries exactly the labels the scheduler produces for that item
/// serially, whether it came from a worker, the cache, or a fan-out.
#[test]
fn repeated_stream_hits_and_coalesces_losslessly() {
    let budget = Budget::Deadline { ms: 900 };
    let table = truth();
    let server = AmsServer::start(
        scheduler(),
        budget,
        ServeConfig {
            shards: 1,
            workers_per_shard: 1,
            max_batch: 4,
            queue_capacity: 64,
            policy: BackpressurePolicy::Block,
            cache: Some(CacheConfig::default()),
            ..ServeConfig::default()
        },
    );
    let client = server.client();
    let mut by_ticket: Vec<(u64, usize)> = Vec::new();
    let mut issued = 0u64;
    // Ten distinct items, four submissions each, interleaved so repeats
    // land while their leader is queued (coalesce) or resolved (hit).
    for round in 0..4 {
        for idx in 0..10 {
            let item = table.item(idx);
            let outcome = client.submit(Arc::new(item.clone()));
            if round > 0 {
                assert!(
                    matches!(
                        outcome,
                        SubmitOutcome::Cached(_) | SubmitOutcome::Coalesced(_)
                    ),
                    "a repeat never re-executes"
                );
            }
            let ticket = outcome.ticket().expect("lossless config");
            by_ticket.push((ticket.id(), idx));
            issued += 1;
        }
    }
    let mut events = Vec::new();
    while let Some(ev) = client.recv() {
        events.push(ev);
    }
    let report = server.shutdown();
    assert_eq!(events.len() as u64, issued, "one event per ticket");
    let serial = scheduler();
    for ev in &events {
        let result = ev.labeled().expect("lossless run only labels");
        let &(_, idx) = by_ticket
            .iter()
            .find(|&&(id, _)| id == result.ticket)
            .expect("known ticket");
        let want = serial.label_item(table.item(idx), budget);
        assert_eq!(result.labels, want.labels, "item {idx}: labels");
        assert_eq!(result.executed, want.executed, "item {idx}: models");
        assert!((result.recall - want.recall).abs() < 1e-9);
    }
    // Dedup really happened: ten executions, thirty answered by the cache.
    assert_eq!(report.completed, 10);
    assert_eq!(report.cache_hit + report.coalesced, 30);
    assert_eq!(report.offered, issued);
    assert!(report.is_conserved(), "hits and coalesced stay conserved");
    let cache = report.cache.as_ref().expect("cache report");
    assert_eq!(cache.entries, 10, "one resolved entry per distinct item");
    assert_eq!(cache.insertions, 10);
    assert_eq!(cache.evictions, 0);
    // The cache answered for free: no queue slot, no virtual-GPU bill —
    // the billed work equals a ten-item run, not a forty-item one.
    assert_eq!(report.stats.items, 10);
}

/// Cancellation storms against leaders that have followers, across every
/// backpressure policy: a cancelled leader with waiters is executed as a
/// ghost (billed, not completed) so its followers still complete; a shed
/// or evicted leader takes its followers down into the same shed bucket.
/// Every ticket resolves exactly once, the event tally matches the report
/// bucket for bucket, and both the count and value ledgers balance with
/// the `cache_hit`/`coalesced`/`value_cached` terms included.
#[test]
fn cancelled_leaders_promote_ghosts_across_policies() {
    let table = truth();
    for policy in [
        BackpressurePolicy::Block,
        BackpressurePolicy::Reject,
        BackpressurePolicy::ShedOldest,
    ] {
        let server = AmsServer::start(
            scheduler(),
            Budget::Deadline { ms: 900 },
            ServeConfig {
                shards: 1,
                workers_per_shard: 1,
                max_batch: 2,
                queue_capacity: 4,
                policy,
                // Real wall time per batch, so cancels race the workers
                // and the small queue genuinely overflows.
                exec_emulation_scale: 2e-3,
                cache: Some(CacheConfig::default()),
                slo: Some(SloConfig::aware(vec![
                    SloClass::new("interactive", 60_000, 4.0),
                    SloClass::new("bulk", 60_000, 1.0),
                ])),
                ..ServeConfig::default()
            },
        );
        let client = server.client();
        let ctx = format!("policy {policy:?}");
        let mut issued = 0u64;
        let mut rejected = 0u64;
        let mut leaders: Vec<Ticket> = Vec::new();
        // Each round: one leader, two followers onto the same content,
        // then cancel the leader — the followers' completions must
        // survive it. Distinct items per round keep rounds independent.
        for (round, item) in table.items().iter().enumerate() {
            let class = round % 2;
            let mut follower_seen = false;
            for dup in 0..3 {
                let outcome = client.submit_class(Arc::new(item.clone()), class);
                if outcome.is_rejected() {
                    rejected += 1;
                    continue;
                }
                issued += 1;
                match outcome {
                    // Only the first submission of a content can lead; a
                    // later Enqueued means the first leader was already
                    // torn down (shed / evicted).
                    SubmitOutcome::Enqueued(t) | SubmitOutcome::EnqueuedShedOldest(t)
                        if dup == 0 =>
                    {
                        leaders.push(t);
                    }
                    SubmitOutcome::Coalesced(_) => follower_seen = true,
                    _ => {}
                }
            }
            // Cancel the round's leader while its followers wait on it.
            if follower_seen && round % 2 == 0 {
                if let Some(t) = leaders.pop() {
                    t.cancel();
                }
            }
        }
        drop(leaders);
        let report = server.shutdown();
        let mut events = Vec::new();
        while let Some(ev) = client.recv() {
            events.push(ev);
        }
        assert_eq!(events.len() as u64, issued, "{ctx}: one event per ticket");
        let ids: HashSet<u64> = events.iter().map(Completion::ticket).collect();
        assert_eq!(ids.len() as u64, issued, "{ctx}: no ticket resolved twice");
        let (labeled, shed, cancelled) = tally(&events);
        assert_eq!(
            labeled,
            report.completed + report.cache_hit + report.coalesced,
            "{ctx}: labeled events = worker completions + cache answers"
        );
        assert_eq!(cancelled, report.cancelled, "{ctx}");
        assert_eq!(
            shed,
            report.shed_admission + report.shed_oldest + report.shed_deadline,
            "{ctx}: follower sheds land in the ordinary buckets"
        );
        assert_eq!(rejected, report.rejected, "{ctx}");
        assert!(report.is_conserved(), "{ctx}: global conservation");
        assert_eq!(report.offered, issued + rejected, "{ctx}");
        assert!(report.cancelled > 0, "{ctx}: some cancels must win");
        assert!(report.coalesced > 0, "{ctx}: some followers must complete");
        let slo = report.slo.as_ref().expect("slo ledger");
        assert!(slo.is_conserved(), "{ctx}: per-class ledgers balance");
        for c in &slo.classes {
            assert!(
                (c.value_offered
                    - c.value_completed
                    - c.value_shed
                    - c.value_cancelled
                    - c.value_cached)
                    .abs()
                    < 1e-6,
                "{ctx} class {}: value ledger balances with value_cached",
                c.name
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Exactly-once under the cache: arbitrary shard/batch/queue shapes,
    /// all three policies, a repetitive stream (arbitrary repeat span),
    /// and a cancellation storm of arbitrary phase that hits leaders and
    /// followers alike. Every ticket resolves to one terminal event and
    /// the conservation equation — with `cache_hit` and `coalesced` —
    /// holds globally and per class.
    #[test]
    fn exactly_once_with_cache_and_cancellation(
        shards in 1usize..4,
        workers_per_shard in 1usize..3,
        max_batch in 1usize..6,
        queue_capacity in 2usize..10,
        policy_idx in 0usize..3,
        repeat_span in 1usize..8,
        cancel_stride in 2usize..5,
    ) {
        let policy = [
            BackpressurePolicy::Block,
            BackpressurePolicy::Reject,
            BackpressurePolicy::ShedOldest,
        ][policy_idx];
        let table = truth();
        let server = AmsServer::start(
            scheduler(),
            Budget::Deadline { ms: 900 },
            ServeConfig {
                shards,
                workers_per_shard,
                max_batch,
                queue_capacity,
                policy,
                exec_emulation_scale: 2e-3,
                cache: Some(CacheConfig::default()),
                slo: Some(SloConfig::aware(vec![
                    SloClass::new("interactive", 60_000, 4.0),
                    SloClass::new("bulk", 60_000, 1.0),
                ])),
                ..ServeConfig::default()
            },
        );
        let client = server.client();
        let mut issued = 0u64;
        let mut rejected = 0u64;
        let mut storm: Vec<Ticket> = Vec::new();
        for i in 0..60usize {
            // Repeat items with span `repeat_span`: span 1 is one item
            // submitted 60 times, span 7 cycles seven contents.
            let item = table.item(i % repeat_span);
            match client.submit_class(Arc::new(item.clone()), i % 2).ticket() {
                Some(ticket) => {
                    issued += 1;
                    if i % cancel_stride == 0 {
                        storm.push(ticket);
                    }
                }
                None => rejected += 1,
            }
            if i % 8 == 7 {
                for t in storm.drain(..) {
                    t.cancel();
                }
            }
        }
        for t in storm.drain(..) {
            t.cancel();
        }
        let report = server.shutdown();
        let mut events = Vec::new();
        while let Some(ev) = client.recv() {
            events.push(ev);
        }
        prop_assert_eq!(events.len() as u64, issued, "one event per ticket");
        let ids: HashSet<u64> = events.iter().map(Completion::ticket).collect();
        prop_assert_eq!(ids.len() as u64, issued, "ids unique");
        let (labeled, shed, cancelled) = tally(&events);
        prop_assert_eq!(labeled, report.completed + report.cache_hit + report.coalesced);
        prop_assert_eq!(cancelled, report.cancelled);
        prop_assert_eq!(
            shed,
            report.shed_admission + report.shed_oldest + report.shed_deadline
        );
        prop_assert_eq!(rejected, report.rejected);
        prop_assert!(report.is_conserved(), "conservation with the cache");
        prop_assert_eq!(report.offered, issued + rejected);
        let slo = report.slo.as_ref().expect("slo ledger");
        prop_assert!(slo.is_conserved(), "class ledgers balance");
        for c in &slo.classes {
            prop_assert!(
                (c.value_offered - c.value_completed - c.value_shed
                    - c.value_cancelled - c.value_cached).abs() < 1e-6,
                "class {} value ledger", c.name
            );
        }
    }
}
