//! Property tests for the model-zoo substrate.

use ams_models::{LabelId, LabelSet, ModelId, ModelOutput, ModelZoo};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    /// LabelSet behaves exactly like a HashSet<u16> under a random op tape.
    #[test]
    fn labelset_matches_hashset_model(ops in prop::collection::vec((0u16..1104, any::<bool>()), 0..200)) {
        let mut set = LabelSet::new(1104);
        let mut model: HashSet<u16> = HashSet::new();
        for (id, insert) in ops {
            let l = LabelId(id);
            if insert {
                prop_assert_eq!(set.insert(l), model.insert(id));
            } else {
                prop_assert_eq!(set.remove(l), model.remove(&id));
            }
            prop_assert_eq!(set.contains(l), model.contains(&id));
        }
        prop_assert_eq!(set.count(), model.len());
        let mut from_iter: Vec<u16> = set.iter().map(|l| l.0).collect();
        let mut from_model: Vec<u16> = model.into_iter().collect();
        from_model.sort_unstable();
        from_iter.sort_unstable();
        prop_assert_eq!(from_iter, from_model);
    }

    /// Union is commutative-by-effect and subset relations hold.
    #[test]
    fn labelset_union_laws(a in prop::collection::hash_set(0u16..256, 0..64),
                           b in prop::collection::hash_set(0u16..256, 0..64)) {
        let build = |ids: &HashSet<u16>| {
            let mut s = LabelSet::new(256);
            for &i in ids {
                s.insert(LabelId(i));
            }
            s
        };
        let sa = build(&a);
        let sb = build(&b);
        let mut u1 = sa.clone();
        u1.union_with(&sb);
        let mut u2 = sb.clone();
        u2.union_with(&sa);
        prop_assert_eq!(u1.count(), u2.count());
        prop_assert!(sa.is_subset_of(&u1));
        prop_assert!(sb.is_subset_of(&u1));
        prop_assert_eq!(u1.count(), a.union(&b).count());
    }

    /// ModelOutput::new dedups to the max confidence, sorted by label.
    #[test]
    fn model_output_dedup_keeps_max(dets in prop::collection::vec((0u16..1104, 0.0f32..1.0), 0..60)) {
        let raw: Vec<ams_models::Detection> = dets
            .iter()
            .map(|&(l, c)| ams_models::Detection::new(LabelId(l), c))
            .collect();
        let out = ModelOutput::new(ModelId(0), raw);
        // sorted unique labels
        for w in out.detections.windows(2) {
            prop_assert!(w[0].label < w[1].label);
        }
        // max confidence per label preserved
        for d in &out.detections {
            let max = dets
                .iter()
                .filter(|&&(l, _)| l == d.label.0)
                .map(|&(_, c)| c)
                .fold(0.0f32, f32::max);
            prop_assert!((d.confidence - max).abs() < 1e-6);
        }
        // value is the sum over the threshold
        let v = out.value(0.5);
        let manual: f64 = out
            .detections
            .iter()
            .filter(|d| d.confidence >= 0.5)
            .map(|d| f64::from(d.confidence))
            .sum();
        prop_assert!((v - manual).abs() < 1e-9);
    }

    /// Zoo subsetting preserves specs and reindexes densely.
    #[test]
    fn zoo_subset_preserves_specs(ids in prop::collection::btree_set(0u8..30, 1..30)) {
        let zoo = ModelZoo::standard();
        let picks: Vec<ModelId> = ids.iter().map(|&i| ModelId(i)).collect();
        let sub = zoo.subset(&picks);
        prop_assert_eq!(sub.len(), picks.len());
        for (new_idx, &old) in picks.iter().enumerate() {
            let s = sub.spec(ModelId(new_idx as u8));
            let o = zoo.spec(old);
            prop_assert_eq!(s.task, o.task);
            prop_assert_eq!(s.time_ms, o.time_ms);
            prop_assert_eq!(s.mem_mb, o.mem_mb);
            prop_assert_eq!(s.id.index(), new_idx);
        }
    }
}
