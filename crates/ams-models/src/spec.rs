//! Model specifications: identity, task, costs and quality profile.

use crate::task::Task;
use serde::{Deserialize, Serialize};

/// Dense identifier of a model in the zoo (0..30 for the standard zoo).
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct ModelId(pub u8);

impl ModelId {
    /// The raw index as `usize`, for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ModelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "M{}", self.0)
    }
}

/// Which of the three per-task variants a model is.
///
/// Within each task the zoo ships three models with overlapping label support
/// but distinct quality/cost trade-offs. This is what makes scheduling
/// interesting: a second same-task model is usually — but not always —
/// redundant, and the agent has to learn when it is not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SkillTier {
    /// Broad, high-accuracy, expensive variant (the "reference" model).
    Flagship,
    /// Specialist: near-perfect on a slice of the task's label space,
    /// weak elsewhere. Valuable exactly when its slice is present.
    Specialist,
    /// Cheap, lower-accuracy variant.
    Compact,
}

impl SkillTier {
    /// All tiers in zoo layout order.
    pub const ALL: [SkillTier; 3] = [
        SkillTier::Flagship,
        SkillTier::Specialist,
        SkillTier::Compact,
    ];

    /// Detection probability for a ground-truth label inside the model's
    /// specialty slice of the task label space.
    pub fn specialty_recall(self) -> f64 {
        match self {
            SkillTier::Flagship => 0.95,
            SkillTier::Specialist => 0.98,
            SkillTier::Compact => 0.62,
        }
    }

    /// Detection probability for a ground-truth label outside the specialty
    /// slice.
    pub fn base_recall(self) -> f64 {
        match self {
            SkillTier::Flagship => 0.92,
            SkillTier::Specialist => 0.35,
            SkillTier::Compact => 0.58,
        }
    }

    /// Mean confidence of a true-positive detection.
    pub fn conf_mean(self) -> f64 {
        match self {
            SkillTier::Flagship => 0.88,
            SkillTier::Specialist => 0.90,
            SkillTier::Compact => 0.72,
        }
    }

    /// Standard deviation of true-positive confidence.
    pub fn conf_sd(self) -> f64 {
        match self {
            SkillTier::Flagship => 0.06,
            SkillTier::Specialist => 0.05,
            SkillTier::Compact => 0.10,
        }
    }

    /// Probability of emitting one spurious low-confidence detection
    /// (the grey boxes of Fig. 1, e.g. "Person 0.43", "Bathroom 0.14").
    pub fn false_positive_rate(self) -> f64 {
        match self {
            SkillTier::Flagship => 0.08,
            SkillTier::Specialist => 0.05,
            SkillTier::Compact => 0.18,
        }
    }
}

/// Stochastic quality profile of a simulated model.
///
/// The profile describes the distribution of the model's output conditioned
/// on ground-truth content. `ams-data::infer` samples from it
/// deterministically (seeded by item x model).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QualityProfile {
    /// Variant tier (drives recall/confidence/false-positive behaviour).
    pub tier: SkillTier,
    /// Specialty slice of the task's label range, as within-task index
    /// bounds `[start, end)`. For [`SkillTier::Specialist`] this is a strict
    /// subset; for other tiers it spans the whole task.
    pub specialty: (usize, usize),
}

impl QualityProfile {
    /// Detection probability for within-task label index `i`.
    pub fn recall_for(&self, i: usize) -> f64 {
        if i >= self.specialty.0 && i < self.specialty.1 {
            self.tier.specialty_recall()
        } else {
            self.tier.base_recall()
        }
    }

    /// Whether within-task label index `i` is in the specialty slice.
    pub fn in_specialty(&self, i: usize) -> bool {
        i >= self.specialty.0 && i < self.specialty.1
    }
}

/// A model in the zoo: identity, task, costs, and quality profile.
///
/// `time_ms` is the average per-item execution time (the paper sets `m.time`
/// to the measured average) and `mem_mb` the peak GPU memory (the paper sets
/// `m.mem` to the measured peak).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Dense zoo identifier.
    pub id: ModelId,
    /// Human-readable name, e.g. `"object-det-flagship"`.
    pub name: String,
    /// The task this model performs.
    pub task: Task,
    /// Average execution time per item, in milliseconds.
    pub time_ms: u32,
    /// Peak GPU memory, in megabytes.
    pub mem_mb: u32,
    /// Output-quality profile.
    pub quality: QualityProfile,
}

impl ModelSpec {
    /// Execution time in seconds (convenience for reporting).
    pub fn time_secs(&self) -> f64 {
        f64::from(self.time_ms) / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_orderings_make_sense() {
        // Specialists beat flagships inside their slice but collapse outside.
        assert!(SkillTier::Specialist.specialty_recall() > SkillTier::Flagship.specialty_recall());
        assert!(SkillTier::Specialist.base_recall() < SkillTier::Compact.base_recall());
        // Compact models are noisier.
        assert!(
            SkillTier::Compact.false_positive_rate() > SkillTier::Flagship.false_positive_rate()
        );
        assert!(SkillTier::Compact.conf_mean() < SkillTier::Flagship.conf_mean());
    }

    #[test]
    fn quality_profile_recall_switches_on_specialty() {
        let q = QualityProfile {
            tier: SkillTier::Specialist,
            specialty: (10, 20),
        };
        assert_eq!(q.recall_for(15), SkillTier::Specialist.specialty_recall());
        assert_eq!(q.recall_for(5), SkillTier::Specialist.base_recall());
        assert!(q.in_specialty(10));
        assert!(!q.in_specialty(20));
    }

    #[test]
    fn model_id_display_and_index() {
        let id = ModelId(7);
        assert_eq!(id.to_string(), "M7");
        assert_eq!(id.index(), 7);
    }

    #[test]
    fn time_secs_converts() {
        let spec = ModelSpec {
            id: ModelId(0),
            name: "x".into(),
            task: Task::FaceDetection,
            time_ms: 250,
            mem_mb: 500,
            quality: QualityProfile {
                tier: SkillTier::Flagship,
                specialty: (0, 1),
            },
        };
        assert!((spec.time_secs() - 0.25).abs() < 1e-12);
    }
}
