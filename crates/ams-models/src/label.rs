//! The global label catalog: 1104 labels across the ten tasks.
//!
//! Labels are identified by a dense [`LabelId`] (0..1104) laid out task by
//! task in [`crate::Task::ALL`] order. A small set of semantically meaningful
//! names (person, dog, pub, riding bike, …) is assigned to the low indices of
//! each task so that handcrafted rules (Table II) and examples can refer to
//! them; the remainder get synthetic names (`place_123`, `action_241`, …).

use crate::task::Task;
use serde::{Deserialize, Serialize};

/// Dense identifier of a label in the global catalog (0..=1103).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LabelId(pub u16);

impl LabelId {
    /// The raw index as `usize`, for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for LabelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Named object classes placed at the head of the object-detection range.
///
/// The first entries matter to the synthetic scene generator and the
/// handcrafted rules: `person`, `dog`, vehicles, household items.
const OBJECT_NAMES: &[&str] = &[
    "person",
    "dog",
    "cat",
    "bicycle",
    "car",
    "motorcycle",
    "bus",
    "truck",
    "boat",
    "bird",
    "horse",
    "sheep",
    "cow",
    "elephant",
    "bear",
    "zebra",
    "giraffe",
    "backpack",
    "umbrella",
    "handbag",
    "tie",
    "suitcase",
    "frisbee",
    "skis",
    "snowboard",
    "sports ball",
    "kite",
    "baseball bat",
    "skateboard",
    "surfboard",
    "tennis racket",
    "bottle",
    "wine glass",
    "cup",
    "fork",
    "knife",
    "spoon",
    "bowl",
    "banana",
    "apple",
    "sandwich",
    "orange",
    "broccoli",
    "carrot",
    "pizza",
    "donut",
    "cake",
    "chair",
    "couch",
    "potted plant",
    "bed",
    "dining table",
    "toilet",
    "tv monitor",
    "laptop",
    "mouse",
    "remote",
    "keyboard",
    "cell phone",
    "microwave",
    "oven",
    "toaster",
    "sink",
    "refrigerator",
    "book",
    "clock",
    "vase",
    "scissors",
    "teddy bear",
    "hair drier",
    "toothbrush",
    "traffic light",
    "fire hydrant",
    "stop sign",
    "parking meter",
    "bench",
    "wheelchair",
    "stroller",
    "ladder",
    "guitar",
];

/// Named place categories at the head of the place-classification range.
/// Indoor places come first (indices 0..INDOOR_PLACE_COUNT are indoor).
const PLACE_NAMES: &[&str] = &[
    // indoor (first 20)
    "pub",
    "beer hall",
    "bathroom",
    "mall",
    "lobby",
    "kitchen",
    "bedroom",
    "office",
    "classroom",
    "gym",
    "restaurant",
    "museum",
    "library",
    "supermarket",
    "living room",
    "corridor",
    "stage",
    "garage",
    "church",
    "airport terminal",
    // outdoor
    "mountain",
    "beach",
    "forest",
    "street",
    "park",
    "stadium",
    "lawn",
    "lake",
    "desert",
    "harbor",
    "playground",
    "farm",
    "bridge",
    "campsite",
    "ski slope",
    "river",
    "garden",
    "parking lot",
    "plaza",
    "trail",
];

/// Number of leading place labels that are indoor categories.
pub const INDOOR_PLACE_COUNT: usize = 20;

/// Number of named (non-synthetic) place labels.
pub const NAMED_PLACE_COUNT: usize = 40;

/// Named action categories at the head of the action-classification range.
/// The first [`SPORT_ACTION_COUNT`] are sports actions (used by Table II's
/// "indoor place lowers sport-action probability" rule).
const ACTION_NAMES: &[&str] = &[
    // sports actions (first 12)
    "riding bike",
    "playing soccer",
    "playing basketball",
    "swimming",
    "surfing",
    "skiing",
    "skateboarding",
    "playing tennis",
    "climbing",
    "running",
    "rowing",
    "playing golf",
    // general actions
    "drinking beer",
    "making up",
    "falling down",
    "cooking",
    "reading",
    "writing",
    "dancing",
    "singing",
    "playing guitar",
    "taking photo",
    "shaking hands",
    "hugging",
    "waving",
    "eating",
    "drinking coffee",
    "walking the dog",
    "phoning",
    "applauding",
];

/// Number of leading action labels that are sports actions.
pub const SPORT_ACTION_COUNT: usize = 12;

/// Named dog breeds at the head of the dog-classification range.
const DOG_NAMES: &[&str] = &[
    "akita",
    "beagle",
    "border collie",
    "boxer",
    "chihuahua",
    "corgi",
    "dachshund",
    "dalmatian",
    "german shepherd",
    "golden retriever",
    "great dane",
    "greyhound",
    "husky",
    "labrador",
    "malamute",
    "pomeranian",
    "poodle",
    "pug",
    "rottweiler",
    "samoyed",
    "shiba inu",
    "st bernard",
    "terrier",
    "whippet",
];

const EMOTION_NAMES: [&str; 7] = [
    "angry", "disgust", "fear", "happy", "sad", "surprise", "neutral",
];

const GENDER_NAMES: [&str; 2] = ["male", "female"];

const POSE_KEYPOINT_NAMES: [&str; 17] = [
    "nose",
    "left eye",
    "right eye",
    "left ear",
    "right ear",
    "left shoulder",
    "right shoulder",
    "left elbow",
    "right elbow",
    "left wrist",
    "right wrist",
    "left hip",
    "right hip",
    "left knee",
    "right knee",
    "left ankle",
    "right ankle",
];

/// The global label catalog.
///
/// Construction is deterministic; two catalogs are always identical, so the
/// type is cheap to share behind an `Arc` or rebuild at will.
#[derive(Debug, Clone)]
pub struct LabelCatalog {
    names: Vec<String>,
    tasks: Vec<Task>,
}

impl LabelCatalog {
    /// Build the standard 1104-label catalog.
    pub fn standard() -> Self {
        let total = Task::total_labels();
        let mut names = Vec::with_capacity(total);
        let mut tasks = Vec::with_capacity(total);
        for task in Task::ALL {
            for i in 0..task.label_count() {
                names.push(Self::name_for(task, i));
                tasks.push(task);
            }
        }
        debug_assert_eq!(names.len(), 1104);
        Self { names, tasks }
    }

    fn name_for(task: Task, i: usize) -> String {
        match task {
            Task::ObjectDetection => OBJECT_NAMES
                .get(i)
                .map(|s| s.to_string())
                .unwrap_or_else(|| format!("object_{i}")),
            Task::PlaceClassification => PLACE_NAMES
                .get(i)
                .map(|s| s.to_string())
                .unwrap_or_else(|| format!("place_{i}")),
            Task::FaceDetection => "face".to_string(),
            Task::FaceLandmark => format!("face_kp_{i}"),
            Task::PoseEstimation => POSE_KEYPOINT_NAMES[i].to_string(),
            Task::EmotionClassification => EMOTION_NAMES[i].to_string(),
            Task::GenderClassification => GENDER_NAMES[i].to_string(),
            Task::ActionClassification => ACTION_NAMES
                .get(i)
                .map(|s| s.to_string())
                .unwrap_or_else(|| format!("action_{i}")),
            Task::HandLandmark => {
                let hand = if i < 21 { "left" } else { "right" };
                format!("hand_{hand}_kp_{}", i % 21)
            }
            Task::DogClassification => DOG_NAMES
                .get(i)
                .map(|s| s.to_string())
                .unwrap_or_else(|| format!("dog_breed_{i}")),
        }
    }

    /// Total number of labels (always 1104 for the standard catalog).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the catalog is empty (never true for the standard catalog).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The display name of a label.
    pub fn name(&self, id: LabelId) -> &str {
        &self.names[id.index()]
    }

    /// The task a label belongs to.
    pub fn task_of(&self, id: LabelId) -> Task {
        self.tasks[id.index()]
    }

    /// The global [`LabelId`] of the `i`-th label of `task`.
    ///
    /// # Panics
    /// Panics if `i >= task.label_count()`.
    pub fn label(&self, task: Task, i: usize) -> LabelId {
        assert!(
            i < task.label_count(),
            "label index {i} out of range for {task} ({} labels)",
            task.label_count()
        );
        LabelId((task.label_offset() + i) as u16)
    }

    /// The contiguous range of [`LabelId`] indices owned by `task`.
    pub fn task_range(&self, task: Task) -> std::ops::Range<usize> {
        let off = task.label_offset();
        off..off + task.label_count()
    }

    /// Look up a label by exact name. Linear scan — intended for tests,
    /// examples and rule construction, not hot paths.
    pub fn find(&self, name: &str) -> Option<LabelId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| LabelId(i as u16))
    }

    /// Iterator over `(LabelId, name, task)` for the whole catalog.
    pub fn iter(&self) -> impl Iterator<Item = (LabelId, &str, Task)> + '_ {
        self.names
            .iter()
            .zip(&self.tasks)
            .enumerate()
            .map(|(i, (n, t))| (LabelId(i as u16), n.as_str(), *t))
    }

    /// Whether a place label (by within-task index) is an indoor category.
    pub fn place_is_indoor(place_index: usize) -> bool {
        place_index < INDOOR_PLACE_COUNT
    }

    /// Whether an action label (by within-task index) is a sports action.
    pub fn action_is_sport(action_index: usize) -> bool {
        action_index < SPORT_ACTION_COUNT
    }
}

impl Default for LabelCatalog {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_1104_labels() {
        let c = LabelCatalog::standard();
        assert_eq!(c.len(), 1104);
        assert!(!c.is_empty());
    }

    #[test]
    fn task_ranges_partition_catalog() {
        let c = LabelCatalog::standard();
        let mut covered = vec![false; c.len()];
        for t in Task::ALL {
            for i in c.task_range(t) {
                assert!(!covered[i], "label {i} covered twice");
                covered[i] = true;
                assert_eq!(c.task_of(LabelId(i as u16)), t);
            }
        }
        assert!(covered.iter().all(|&b| b));
    }

    #[test]
    fn named_labels_resolve() {
        let c = LabelCatalog::standard();
        let person = c.find("person").expect("person exists");
        assert_eq!(person, c.label(Task::ObjectDetection, 0));
        let dog = c.find("dog").expect("dog exists");
        assert_eq!(dog, c.label(Task::ObjectDetection, 1));
        let face = c.find("face").expect("face exists");
        assert_eq!(c.task_of(face), Task::FaceDetection);
        let pub_ = c.find("pub").expect("pub exists");
        assert_eq!(c.task_of(pub_), Task::PlaceClassification);
        assert!(c.find("drinking beer").is_some());
        assert!(c.find("akita").is_some());
        assert!(c.find("no such label").is_none());
    }

    #[test]
    fn label_names_are_unique() {
        let c = LabelCatalog::standard();
        let mut names: Vec<&str> = c.names.iter().map(|s| s.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate label names");
    }

    #[test]
    fn indoor_and_sport_flags() {
        assert!(LabelCatalog::place_is_indoor(0));
        assert!(LabelCatalog::place_is_indoor(INDOOR_PLACE_COUNT - 1));
        assert!(!LabelCatalog::place_is_indoor(INDOOR_PLACE_COUNT));
        assert!(LabelCatalog::action_is_sport(0));
        assert!(!LabelCatalog::action_is_sport(SPORT_ACTION_COUNT));
    }

    #[test]
    fn label_accessor_bounds() {
        let c = LabelCatalog::standard();
        // last label of last task is valid
        let last = c.label(Task::DogClassification, 119);
        assert_eq!(last.index(), 1103);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn label_accessor_panics_out_of_range() {
        let c = LabelCatalog::standard();
        let _ = c.label(Task::FaceDetection, 1);
    }

    #[test]
    fn iter_yields_all() {
        let c = LabelCatalog::standard();
        assert_eq!(c.iter().count(), 1104);
        let (id, name, task) = c.iter().next().unwrap();
        assert_eq!(id, LabelId(0));
        assert_eq!(name, "person");
        assert_eq!(task, Task::ObjectDetection);
    }
}
