//! # ams-models — model-zoo substrate
//!
//! This crate defines the *static* side of the adaptive model scheduling
//! problem: the visual-analysis **tasks** (Table I of the paper), the global
//! **label catalog** (1104 labels across 10 tasks), and the **model zoo**
//! (30 simulated deep-learning models, 3 per task) with calibrated time and
//! GPU-memory costs and per-model quality profiles.
//!
//! Nothing here executes a model: execution is a function of a data item's
//! latent content and lives in `ams-data::infer`. This crate is purely the
//! catalog that schedulers and agents reason about — mirroring the paper,
//! where the scheduler only observes `(labels, confidences, m.time, m.mem)`.
//!
//! ## Calibration
//!
//! Costs are calibrated so that running all 30 models ("no policy") costs
//! about 5.16 s per item — the figure reported in §II of the paper — with
//! per-model times in the 50–450 ms band and peak memory in the 500–8000 MB
//! band (Table III). See [`zoo::ModelZoo::standard`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod label;
pub mod labelset;
pub mod output;
pub mod spec;
pub mod task;
pub mod zoo;

pub use label::{LabelCatalog, LabelId};
pub use labelset::LabelSet;
pub use output::{Detection, ModelOutput};
pub use spec::{ModelId, ModelSpec, QualityProfile, SkillTier};
pub use task::Task;
pub use zoo::ModelZoo;
