//! A fixed-width bitset over the label catalog — the "labeling state" of the
//! paper (the n-dimensional binary observation vector, n = 1104).

use crate::label::LabelId;
use serde::{Deserialize, Serialize};

/// Bitset over label ids, used as the labeling state `s` of the MDP and for
/// ground-truth set algebra.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelSet {
    words: Vec<u64>,
    len: usize,
}

impl LabelSet {
    /// An empty set over a universe of `len` labels.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Insert a label. Returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, id: LabelId) -> bool {
        let i = id.index();
        debug_assert!(i < self.len, "label {i} outside universe {}", self.len);
        let (w, b) = (i / 64, i % 64);
        let was = self.words[w] >> b & 1;
        self.words[w] |= 1 << b;
        was == 0
    }

    /// Remove a label. Returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, id: LabelId) -> bool {
        let i = id.index();
        let (w, b) = (i / 64, i % 64);
        let was = self.words[w] >> b & 1;
        self.words[w] &= !(1 << b);
        was == 1
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: LabelId) -> bool {
        let i = id.index();
        if i >= self.len {
            return false;
        }
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of labels in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Remove all labels.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// In-place union with another set of the same universe.
    pub fn union_with(&mut self, other: &LabelSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// Whether `self` is a subset of `other`.
    pub fn is_subset_of(&self, other: &LabelSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterate set members in increasing label order.
    pub fn iter(&self) -> impl Iterator<Item = LabelId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(LabelId((wi * 64 + b) as u16))
            })
        })
    }

    /// The set members as a dense vector of raw indices (sparse encoding of
    /// the binary observation vector, used by the Q-network's sparse path).
    pub fn to_sparse(&self) -> Vec<u32> {
        self.iter().map(|l| u32::from(l.0)).collect()
    }

    /// Write the sparse encoding into `out`, reusing its allocation.
    /// The hot-path variant of [`LabelSet::to_sparse`]: schedulers and the
    /// trainer call this once per decision step.
    pub fn write_sparse(&self, out: &mut Vec<u32>) {
        out.clear();
        out.extend(self.iter().map(|l| u32::from(l.0)));
    }

    /// Write the set as a dense 0/1 `f32` vector into `out`
    /// (`out.len() == universe`).
    pub fn write_dense(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.len);
        out.fill(0.0);
        for l in self.iter() {
            out[l.index()] = 1.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = LabelSet::new(1104);
        assert!(s.insert(LabelId(0)));
        assert!(s.insert(LabelId(1103)));
        assert!(!s.insert(LabelId(0)), "double insert reports not-new");
        assert!(s.contains(LabelId(0)));
        assert!(s.contains(LabelId(1103)));
        assert!(!s.contains(LabelId(500)));
        assert_eq!(s.count(), 2);
        assert!(s.remove(LabelId(0)));
        assert!(!s.remove(LabelId(0)));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn iter_in_order() {
        let mut s = LabelSet::new(200);
        for i in [150u16, 3, 64, 65, 0] {
            s.insert(LabelId(i));
        }
        let got: Vec<u16> = s.iter().map(|l| l.0).collect();
        assert_eq!(got, vec![0, 3, 64, 65, 150]);
        assert_eq!(s.to_sparse(), vec![0u32, 3, 64, 65, 150]);
    }

    #[test]
    fn union_and_subset() {
        let mut a = LabelSet::new(128);
        let mut b = LabelSet::new(128);
        a.insert(LabelId(1));
        b.insert(LabelId(1));
        b.insert(LabelId(100));
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        a.union_with(&b);
        assert_eq!(a.count(), 2);
        assert!(b.is_subset_of(&a));
    }

    #[test]
    fn dense_round_trip() {
        let mut s = LabelSet::new(70);
        s.insert(LabelId(5));
        s.insert(LabelId(69));
        let mut dense = vec![0.0f32; 70];
        s.write_dense(&mut dense);
        assert_eq!(dense[5], 1.0);
        assert_eq!(dense[69], 1.0);
        assert_eq!(dense.iter().sum::<f32>(), 2.0);
    }

    #[test]
    fn clear_empties() {
        let mut s = LabelSet::new(64);
        s.insert(LabelId(10));
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn contains_out_of_universe_is_false() {
        let s = LabelSet::new(10);
        assert!(!s.contains(LabelId(100)));
    }
}
