//! Model outputs: detections (label + confidence) per model execution.

use crate::label::LabelId;
use crate::spec::ModelId;
use serde::{Deserialize, Serialize};

/// A single output label with its confidence in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// The label produced.
    pub label: LabelId,
    /// The model's confidence in the label.
    pub confidence: f32,
}

impl Detection {
    /// Construct a detection, clamping confidence into `[0, 1]`.
    pub fn new(label: LabelId, confidence: f32) -> Self {
        Self {
            label,
            confidence: confidence.clamp(0.0, 1.0),
        }
    }
}

/// The full output `O({m}, d)` of one model executed on one data item.
///
/// Detections are sorted by label id and deduplicated (keeping the highest
/// confidence) at construction time, so downstream set algebra is cheap.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ModelOutput {
    /// The model that produced this output.
    pub model: ModelId,
    /// Sorted-by-label, deduplicated detections.
    pub detections: Vec<Detection>,
}

impl ModelOutput {
    /// Build an output from raw detections: sorts by label and keeps the
    /// maximum confidence per label.
    pub fn new(model: ModelId, mut detections: Vec<Detection>) -> Self {
        detections.sort_by(|a, b| {
            a.label.cmp(&b.label).then(
                b.confidence
                    .partial_cmp(&a.confidence)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        detections.dedup_by_key(|d| d.label);
        Self { model, detections }
    }

    /// Whether the model produced nothing at all (white boxes of Fig. 1).
    pub fn is_empty(&self) -> bool {
        self.detections.is_empty()
    }

    /// Number of detections.
    pub fn len(&self) -> usize {
        self.detections.len()
    }

    /// Confidence for `label`, if the model output it.
    pub fn confidence_of(&self, label: LabelId) -> Option<f32> {
        self.detections
            .binary_search_by_key(&label, |d| d.label)
            .ok()
            .map(|i| self.detections[i].confidence)
    }

    /// Detections at or above a confidence threshold ("valuable" outputs).
    pub fn valuable(&self, threshold: f32) -> impl Iterator<Item = &Detection> + '_ {
        self.detections
            .iter()
            .filter(move |d| d.confidence >= threshold)
    }

    /// Sum of confidences of detections at or above `threshold`.
    pub fn value(&self, threshold: f32) -> f64 {
        self.valuable(threshold)
            .map(|d| f64::from(d.confidence))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(l: u16, c: f32) -> Detection {
        Detection::new(LabelId(l), c)
    }

    #[test]
    fn new_sorts_and_dedups_keeping_max_confidence() {
        let out = ModelOutput::new(ModelId(0), vec![det(5, 0.3), det(2, 0.9), det(5, 0.8)]);
        assert_eq!(out.len(), 2);
        assert_eq!(out.detections[0].label, LabelId(2));
        assert_eq!(out.detections[1].label, LabelId(5));
        assert!((out.confidence_of(LabelId(5)).unwrap() - 0.8).abs() < 1e-6);
    }

    #[test]
    fn confidence_clamped() {
        assert_eq!(det(0, 1.5).confidence, 1.0);
        assert_eq!(det(0, -0.5).confidence, 0.0);
    }

    #[test]
    fn valuable_filters_by_threshold() {
        let out = ModelOutput::new(ModelId(1), vec![det(1, 0.96), det(2, 0.43), det(3, 0.87)]);
        let v: Vec<_> = out.valuable(0.5).map(|d| d.label).collect();
        assert_eq!(v, vec![LabelId(1), LabelId(3)]);
        assert!((out.value(0.5) - (0.96f64 + 0.87f64)).abs() < 1e-6);
    }

    #[test]
    fn empty_output() {
        let out = ModelOutput::new(ModelId(2), vec![]);
        assert!(out.is_empty());
        assert_eq!(out.value(0.0), 0.0);
        assert!(out.confidence_of(LabelId(0)).is_none());
    }
}
