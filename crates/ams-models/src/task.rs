//! The ten visual-analysis tasks of Table I.

use serde::{Deserialize, Serialize};

/// A visual-analysis task, one of the ten in Table I of the paper.
///
/// Each task owns a contiguous slice of the global label catalog; the label
/// counts per task replicate Table I exactly (summing to 1104).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Task {
    /// Object detection (80 labels — COCO-style object classes).
    ObjectDetection,
    /// Place classification (365 labels — Places365-style categories).
    PlaceClassification,
    /// Face detection (1 label — "face").
    FaceDetection,
    /// Face landmark localization (70 labels — facial keypoints).
    FaceLandmark,
    /// Human pose estimation (17 labels — body keypoints).
    PoseEstimation,
    /// Emotion classification (7 labels).
    EmotionClassification,
    /// Gender classification (2 labels).
    GenderClassification,
    /// Action classification (400 labels — Kinetics-style actions).
    ActionClassification,
    /// Hand landmark localization (42 labels — 21 keypoints x 2 hands).
    HandLandmark,
    /// Fine-grained dog breed classification (120 labels).
    DogClassification,
}

impl Task {
    /// All ten tasks in catalog order (the order labels are laid out in).
    pub const ALL: [Task; 10] = [
        Task::ObjectDetection,
        Task::PlaceClassification,
        Task::FaceDetection,
        Task::FaceLandmark,
        Task::PoseEstimation,
        Task::EmotionClassification,
        Task::GenderClassification,
        Task::ActionClassification,
        Task::HandLandmark,
        Task::DogClassification,
    ];

    /// Number of labels this task contributes to the catalog (Table I).
    pub const fn label_count(self) -> usize {
        match self {
            Task::ObjectDetection => 80,
            Task::PlaceClassification => 365,
            Task::FaceDetection => 1,
            Task::FaceLandmark => 70,
            Task::PoseEstimation => 17,
            Task::EmotionClassification => 7,
            Task::GenderClassification => 2,
            Task::ActionClassification => 400,
            Task::HandLandmark => 42,
            Task::DogClassification => 120,
        }
    }

    /// Offset of this task's first label in the global catalog.
    pub fn label_offset(self) -> usize {
        let mut off = 0;
        let mut i = 0;
        while i < Self::ALL.len() {
            if Self::ALL[i] == self {
                return off;
            }
            off += Self::ALL[i].label_count();
            i += 1;
        }
        unreachable!("task missing from Task::ALL");
    }

    /// Human-readable task name as printed in Table I.
    pub const fn name(self) -> &'static str {
        match self {
            Task::ObjectDetection => "Object Detection",
            Task::PlaceClassification => "Place Classification",
            Task::FaceDetection => "Face Detection",
            Task::FaceLandmark => "Face Landmark Localization",
            Task::PoseEstimation => "Pose Estimation",
            Task::EmotionClassification => "Emotion Classification",
            Task::GenderClassification => "Gender Classification",
            Task::ActionClassification => "Action Classification",
            Task::HandLandmark => "Hand Landmark Localization",
            Task::DogClassification => "Dog Classification",
        }
    }

    /// Stable small index of the task (position in [`Task::ALL`]).
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&t| t == self)
            .expect("task in ALL")
    }

    /// Total number of labels across all tasks: 1104, as in the paper.
    pub fn total_labels() -> usize {
        Self::ALL.iter().map(|t| t.label_count()).sum()
    }
}

impl std::fmt::Display for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_counts_match_table1() {
        assert_eq!(Task::ObjectDetection.label_count(), 80);
        assert_eq!(Task::PlaceClassification.label_count(), 365);
        assert_eq!(Task::FaceDetection.label_count(), 1);
        assert_eq!(Task::FaceLandmark.label_count(), 70);
        assert_eq!(Task::PoseEstimation.label_count(), 17);
        assert_eq!(Task::EmotionClassification.label_count(), 7);
        assert_eq!(Task::GenderClassification.label_count(), 2);
        assert_eq!(Task::ActionClassification.label_count(), 400);
        assert_eq!(Task::HandLandmark.label_count(), 42);
        assert_eq!(Task::DogClassification.label_count(), 120);
    }

    #[test]
    fn total_is_1104() {
        assert_eq!(Task::total_labels(), 1104);
    }

    #[test]
    fn offsets_are_contiguous_and_ordered() {
        let mut expected = 0usize;
        for t in Task::ALL {
            assert_eq!(t.label_offset(), expected, "offset of {t}");
            expected += t.label_count();
        }
        assert_eq!(expected, 1104);
    }

    #[test]
    fn index_round_trips() {
        for (i, t) in Task::ALL.iter().enumerate() {
            assert_eq!(t.index(), i);
            assert_eq!(Task::ALL[t.index()], *t);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Task::ALL.iter().map(|t| t.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10);
    }
}
