//! The standard 30-model zoo (Table I): 3 variants per task with calibrated
//! time and memory costs.

use crate::label::LabelCatalog;
use crate::spec::{ModelId, ModelSpec, QualityProfile, SkillTier};
use crate::task::Task;
use serde::{Deserialize, Serialize};

/// Per-task `(time_ms, mem_mb)` for the three variants, in
/// `[Flagship, Specialist, Compact]` order.
///
/// Times are calibrated so the whole zoo sums to ~5.17 s per item (§II of the
/// paper reports 5.16 s for "no policy" on a Tesla P100); individual times sit
/// in the 50–450 ms band and memory in the 500–8000 MB band (Table III).
const COSTS: [(Task, [(u32, u32); 3]); 10] = [
    (
        Task::ObjectDetection,
        [(210, 3500), (150, 2200), (110, 900)],
    ),
    (
        Task::PlaceClassification,
        [(80, 1200), (65, 800), (90, 1500)],
    ),
    (Task::FaceDetection, [(60, 600), (75, 900), (65, 700)]),
    (Task::FaceLandmark, [(250, 2800), (215, 2200), (185, 1800)]),
    (
        Task::PoseEstimation,
        [(450, 8000), (370, 6000), (300, 4500)],
    ),
    (
        Task::EmotionClassification,
        [(95, 900), (80, 700), (70, 600)],
    ),
    (
        Task::GenderClassification,
        [(65, 700), (60, 600), (55, 500)],
    ),
    (
        Task::ActionClassification,
        [(420, 7000), (350, 5500), (270, 4200)],
    ),
    (Task::HandLandmark, [(260, 3200), (220, 2600), (190, 2100)]),
    (
        Task::DogClassification,
        [(150, 1600), (120, 1200), (95, 900)],
    ),
];

/// The model zoo: an ordered collection of [`ModelSpec`]s plus the label
/// catalog they draw from.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelZoo {
    specs: Vec<ModelSpec>,
}

impl ModelZoo {
    /// Build the standard 30-model zoo of Table I.
    ///
    /// Models are laid out task-major, tier-minor: model `3*t + k` is the
    /// `k`-th variant ([`SkillTier::ALL`] order) of task `Task::ALL[t]`.
    pub fn standard() -> Self {
        let mut specs = Vec::with_capacity(30);
        for (ti, (task, costs)) in COSTS.iter().enumerate() {
            let n = task.label_count();
            for (ki, tier) in SkillTier::ALL.into_iter().enumerate() {
                let (time_ms, mem_mb) = costs[ki];
                // Specialists own the middle third of the task's label range;
                // other tiers span the whole range.
                let specialty = match tier {
                    SkillTier::Specialist => (n / 3, 2 * n / 3),
                    _ => (0, n),
                };
                let tier_name = match tier {
                    SkillTier::Flagship => "flagship",
                    SkillTier::Specialist => "specialist",
                    SkillTier::Compact => "compact",
                };
                specs.push(ModelSpec {
                    id: ModelId((ti * 3 + ki) as u8),
                    name: format!("{}-{tier_name}", Self::slug(*task)),
                    task: *task,
                    time_ms,
                    mem_mb,
                    quality: QualityProfile { tier, specialty },
                });
            }
        }
        Self { specs }
    }

    fn slug(task: Task) -> &'static str {
        match task {
            Task::ObjectDetection => "object-det",
            Task::PlaceClassification => "place-cls",
            Task::FaceDetection => "face-det",
            Task::FaceLandmark => "face-landmark",
            Task::PoseEstimation => "pose-est",
            Task::EmotionClassification => "emotion-cls",
            Task::GenderClassification => "gender-cls",
            Task::ActionClassification => "action-cls",
            Task::HandLandmark => "hand-landmark",
            Task::DogClassification => "dog-cls",
        }
    }

    /// Number of models (30 for the standard zoo).
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the zoo is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The spec of a model.
    pub fn spec(&self, id: ModelId) -> &ModelSpec {
        &self.specs[id.index()]
    }

    /// All specs in id order.
    pub fn specs(&self) -> &[ModelSpec] {
        &self.specs
    }

    /// Iterator over model ids in order.
    pub fn ids(&self) -> impl Iterator<Item = ModelId> + '_ {
        (0..self.specs.len()).map(|i| ModelId(i as u8))
    }

    /// Models performing `task`, in tier order.
    pub fn models_for(&self, task: Task) -> impl Iterator<Item = &ModelSpec> + '_ {
        self.specs.iter().filter(move |s| s.task == task)
    }

    /// Total time of executing every model once, in milliseconds
    /// (the "no policy" cost of §II).
    pub fn total_time_ms(&self) -> u32 {
        self.specs.iter().map(|s| s.time_ms).sum()
    }

    /// The single most expensive model's memory footprint, in MB.
    pub fn max_mem_mb(&self) -> u32 {
        self.specs.iter().map(|s| s.mem_mb).max().unwrap_or(0)
    }

    /// Build a reduced zoo containing only the given model ids (re-identified
    /// densely). Useful for small tests and ablations.
    pub fn subset(&self, ids: &[ModelId]) -> Self {
        let specs = ids
            .iter()
            .enumerate()
            .map(|(new_id, &old)| {
                let mut s = self.spec(old).clone();
                s.id = ModelId(new_id as u8);
                s
            })
            .collect();
        Self { specs }
    }

    /// The label catalog models of this zoo label against.
    ///
    /// The standard zoo always uses the standard catalog; this helper keeps
    /// call sites from constructing it separately.
    pub fn catalog(&self) -> LabelCatalog {
        LabelCatalog::standard()
    }
}

impl Default for ModelZoo {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_has_30_models_3_per_task() {
        let zoo = ModelZoo::standard();
        assert_eq!(zoo.len(), 30);
        for t in Task::ALL {
            assert_eq!(zoo.models_for(t).count(), 3, "{t}");
        }
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let zoo = ModelZoo::standard();
        for (i, spec) in zoo.specs().iter().enumerate() {
            assert_eq!(spec.id.index(), i);
        }
    }

    #[test]
    fn total_time_close_to_paper() {
        let zoo = ModelZoo::standard();
        let total = zoo.total_time_ms();
        // Paper: 5.16 s "no policy". We calibrate to within ~5%.
        assert!((4900..=5450).contains(&total), "total zoo time {total} ms");
    }

    #[test]
    fn costs_within_paper_bands() {
        let zoo = ModelZoo::standard();
        for s in zoo.specs() {
            assert!(
                (50..=450).contains(&s.time_ms),
                "{}: {} ms",
                s.name,
                s.time_ms
            );
            assert!(
                (500..=8000).contains(&s.mem_mb),
                "{}: {} MB",
                s.name,
                s.mem_mb
            );
        }
    }

    #[test]
    fn pose_flagship_is_most_memory_hungry() {
        let zoo = ModelZoo::standard();
        assert_eq!(zoo.max_mem_mb(), 8000);
        let pose = zoo.models_for(Task::PoseEstimation).next().unwrap();
        assert_eq!(pose.mem_mb, 8000);
    }

    #[test]
    fn specialists_have_proper_specialty_slices() {
        let zoo = ModelZoo::standard();
        for s in zoo.specs() {
            let n = s.task.label_count();
            let (a, b) = s.quality.specialty;
            assert!(a <= b && b <= n, "{}: specialty {a}..{b} of {n}", s.name);
            if matches!(s.quality.tier, SkillTier::Specialist) && n >= 3 {
                assert!(
                    b - a < n,
                    "{}: specialist should not span whole task",
                    s.name
                );
            }
        }
    }

    #[test]
    fn subset_reindexes() {
        let zoo = ModelZoo::standard();
        let small = zoo.subset(&[ModelId(3), ModelId(29)]);
        assert_eq!(small.len(), 2);
        assert_eq!(small.spec(ModelId(0)).task, Task::PlaceClassification);
        assert_eq!(small.spec(ModelId(1)).task, Task::DogClassification);
        assert_eq!(small.spec(ModelId(1)).id, ModelId(1));
    }

    #[test]
    fn names_unique() {
        let zoo = ModelZoo::standard();
        let mut names: Vec<&str> = zoo.specs().iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 30);
    }
}
