//! Serving demo: run the labeling engine as a continuous service — the
//! deployment shape of the paper's motivating applications — with sharded
//! admission queues, batched execution, and latency telemetry.
//!
//! A burst of album photos is submitted to an [`AmsServer`] nine times:
//! once with a lossless blocking configuration, once with a tiny queue and
//! a shed-oldest policy under a request timeout (graceful degradation
//! under overload), once with model-affinity routing plus the adaptive
//! batch-limit controller — the configuration that coalesces same-model
//! batches deliberately and retunes `max_batch` against a tail-latency
//! target — once with SLO classes (deadline + value weight per request),
//! where admission control, value-weighted eviction, and EDF dequeue make
//! the *shedding* deliberate as well — and once through the
//! request/response **client API**: every submission returns a cancellable
//! completion ticket, each request's own labels come back as a `Labeled`
//! event on the client's completion queue, and a cancelled straggler
//! resolves to exactly one `Cancelled` event instead of wasting a worker —
//! and finally once with the **content-addressed label cache**, where a
//! repetitive stream is deduplicated: exact repeats answer before
//! admission with zero GPU bill, in-flight duplicates coalesce onto one
//! execution, and a cancelled leader's followers are fed by a ghost run —
//! and once more with the **live observability layer** on: periodic
//! metrics snapshots taken *while the overload runs*, a Prometheus
//! scrape, and a flight-recorder post-mortem for a deadline casualty,
//! with the event stream reconciling against the conservation ledger —
//! and lastly **over the wire**: a loopback [`NetServer`] serving two
//! separate OS processes, each a [`NetClient`] on one persistent
//! connection whose completion window is the only flow control, one of
//! them attaching a per-ticket deadline that travels the frames and is
//! enforced server-side — and ninth, the loop **closes**: the workload
//! drifts mid-stream to a dataset profile the boot agent never trained
//! on, and the background trainer (`ams-serve::adapt`) learns from
//! served outcomes and hot-swaps updated weights into the predict path
//! while the stream runs, banking measurably more post-shift label value
//! than the same server frozen.
//!
//! Run with: `cargo run --release --example serve_demo [-- --smoke]`
//! (`--smoke` shrinks the dataset and training so CI can exercise the
//! whole public serving surface in seconds).

use ams::prelude::*;
use std::sync::Arc;

/// Hidden child mode for scenario 8 (`serve_demo net-client <addr>
/// <album-size> <start> <stride> <deadline-us>`): a separate OS process
/// that rebuilds the deterministic album, connects a [`NetClient`] to the
/// parent's loopback listener, submits its strided half (attaching a
/// per-ticket deadline when asked), pumps the completion window, and
/// prints a one-line summary the parent's output interleaves with.
fn net_client_child(args: &[String]) {
    let addr = args[0].as_str();
    let album_size: usize = args[1].parse().expect("album size");
    let start: usize = args[2].parse().expect("start");
    let stride: usize = args[3].parse().expect("stride");
    let deadline_us: u64 = args[4].parse().expect("deadline");
    let zoo = ModelZoo::standard();
    let album = Dataset::generate(DatasetProfile::Coco2017, album_size, 11);
    let truth = TruthTable::build(&zoo, &zoo.catalog(), &album, 0.5);

    let client = NetClient::connect_with_window(addr, 8).expect("connect to parent listener");
    let mut events = Vec::new();
    let mut submitted = 0u64;
    for item in truth.items().iter().skip(start).step_by(stride.max(1)) {
        // A full completion window is the wire's flow control: the client
        // must read a completion before the protocol lets it submit more.
        while client.outstanding() >= client.capacity() {
            events.push(
                client
                    .recv()
                    .expect("recv completion")
                    .expect("window full implies outstanding completions"),
            );
        }
        let opts = if deadline_us > 0 {
            SubmitOptions::default().deadline_us(deadline_us)
        } else {
            SubmitOptions::default()
        };
        client
            .submit_with(Arc::new(item.clone()), opts)
            .expect("submit over the wire");
        submitted += 1;
    }
    events.extend(client.drain().expect("drain completions"));
    let (mut labeled, mut shed, mut other) = (0u64, 0u64, 0u64);
    for ev in &events {
        match ev.completion() {
            Some(Completion::Labeled(_)) => labeled += 1,
            Some(Completion::Shed { .. }) => shed += 1,
            _ => other += 1,
        }
    }
    client.goodbye().expect("goodbye");
    let tag = if deadline_us > 0 { "deadline" } else { "plain" };
    println!(
        "  [child {tag}] {submitted} submitted over the wire -> {labeled} labeled, {shed} shed, {other} other"
    );
    assert_eq!(
        events.len() as u64,
        submitted,
        "every wire request resolves exactly once"
    );
}

fn scheduler(agent: TrainedAgent, world_seed: u64) -> AdaptiveModelScheduler {
    AdaptiveModelScheduler::new(
        ModelZoo::standard(),
        Box::new(AgentPredictor::new(agent)),
        0.5,
        world_seed,
    )
}

fn print_report(tag: &str, r: &ServeReport) {
    println!("--- {tag} ---");
    println!(
        "  {} offered | {} completed | {} rejected | {} shed-oldest | {} shed-deadline ({:.0}% shed)",
        r.offered,
        r.completed,
        r.rejected,
        r.shed_oldest,
        r.shed_deadline,
        r.shed_rate() * 100.0
    );
    println!(
        "  latency: queue-wait p50 {:.1}ms p99 {:.1}ms | execute p50 {:.1}ms p99 {:.1}ms | total p99 {:.1}ms",
        r.queue_wait.p50_us as f64 / 1000.0,
        r.queue_wait.p99_us as f64 / 1000.0,
        r.execute.p50_us as f64 / 1000.0,
        r.execute.p99_us as f64 / 1000.0,
        r.total.p99_us as f64 / 1000.0,
    );
    println!(
        "  batches: {} (largest {}), virtual exec {:.1}s vs serial bill {:.1}s ({:.0}% saved by batching)",
        r.batches,
        r.max_batch_observed,
        r.virtual_exec_ms as f64 / 1000.0,
        r.stats.total_exec_ms as f64 / 1000.0,
        (1.0 - r.virtual_exec_ms as f64 / r.stats.total_exec_ms.max(1) as f64) * 100.0,
    );
    println!(
        "  labels: mean recall {:.1}% over {} items, {:.1} models/item",
        r.stats.mean_recall() * 100.0,
        r.stats.items,
        r.stats.mean_models()
    );
    if r.routing == "affinity" {
        println!(
            "  routing: affinity hit rate {:.0}% ({} hits, {} spills), {:.2} executions coalesced per model invocation",
            r.affinity_hit_rate() * 100.0,
            r.affinity_hits,
            r.affinity_spills,
            r.mean_coalesced(),
        );
    }
    if let Some(a) = &r.adaptive {
        for s in &a.shards {
            println!(
                "  adaptive shard {}: max_batch -> {} after {} adjustments (last window p99 {:.1}ms vs {}ms target, {})",
                s.shard,
                s.final_max_batch,
                s.adjustments,
                s.last_window_p99_us as f64 / 1000.0,
                a.target_p99_ms,
                if s.within_target { "within target" } else { "missed" },
            );
        }
    }
    if let Some(slo) = &r.slo {
        println!(
            "  slo: {:.1} value banked / {:.1} lost ({:.1} of it late), deadline met {:.0}%",
            slo.value_completed(),
            slo.value_shed_loss(),
            slo.value_late(),
            slo.deadline_met_rate() * 100.0,
        );
        for c in &slo.classes {
            println!(
                "    class {:<12} ({:>4}ms, weight {}): {} offered, {} met, sheds adm/old/dead = {}/{}/{}, p99 {:.1}ms",
                c.name,
                c.deadline_ms,
                c.weight,
                c.offered,
                c.deadline_met,
                c.shed_admission,
                c.shed_oldest,
                c.shed_deadline,
                c.total.p99_us as f64 / 1000.0,
            );
        }
    }
}

fn main() {
    // Scenario 8's child processes re-exec this binary with a hidden
    // subcommand; they never train or serve, just speak the wire.
    let argv: Vec<String> = std::env::args().collect();
    if argv.get(1).map(String::as_str) == Some("net-client") {
        net_client_child(&argv[2..]);
        return;
    }
    // `--smoke` keeps CI runs in seconds: a smaller album and a shorter
    // training run, same code paths end to end.
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (album_size, episodes) = if smoke { (48, 8) } else { (240, 120) };
    // Album-indexing content plus a quickly trained value predictor.
    let zoo = ModelZoo::standard();
    let album = Dataset::generate(DatasetProfile::Coco2017, album_size, 11);
    let truth = TruthTable::build(&zoo, &zoo.catalog(), &album, 0.5);
    let cfg = TrainConfig {
        episodes,
        ..TrainConfig::fast_test(Algo::Dqn)
    };
    let (agent, _) = train(truth.items(), zoo.len(), &cfg);
    let budget = Budget::Deadline { ms: 1000 };
    let items: Vec<Arc<ItemTruth>> = truth.items().iter().map(|i| Arc::new(i.clone())).collect();

    // 1) Lossless ingestion: blocking backpressure, everything is labeled.
    let server = AmsServer::start(
        scheduler(agent.clone(), album.world_seed),
        budget,
        ServeConfig {
            shards: 4,
            workers_per_shard: 2,
            max_batch: 8,
            policy: BackpressurePolicy::Block,
            exec_emulation_scale: 1e-3,
            ..ServeConfig::default()
        },
    );
    for item in &items {
        server.submit(Arc::clone(item));
    }
    print_report("lossless album ingestion (block)", &server.shutdown());

    // 2) Overloaded surveillance shape: shallow queues, freshest-first
    //    shedding, and a hard staleness deadline per frame.
    let server = AmsServer::start(
        scheduler(agent.clone(), album.world_seed),
        budget,
        ServeConfig {
            shards: 2,
            workers_per_shard: 1,
            queue_capacity: 4,
            max_batch: 4,
            policy: BackpressurePolicy::ShedOldest,
            request_timeout_ms: Some(50),
            exec_emulation_scale: 5e-3,
            ..ServeConfig::default()
        },
    );
    for item in &items {
        server.submit(Arc::clone(item));
    }
    print_report(
        "overloaded surveillance feed (shed-oldest + 50ms deadline)",
        &server.shutdown(),
    );

    // 3) Affinity routing + adaptive batching: requests predicted to run
    //    the same models coalesce on the same shard, and each shard's
    //    batch limit is retuned online against a 60ms p99 target.
    let server = AmsServer::start(
        scheduler(agent.clone(), album.world_seed),
        budget,
        ServeConfig {
            shards: 4,
            workers_per_shard: 2,
            max_batch: 8,
            policy: BackpressurePolicy::Block,
            routing: RoutingMode::Affinity(AffinityConfig::default()),
            adaptive: Some(AdaptiveBatchConfig {
                target_p99_ms: 60,
                max_batch: 16,
                ..AdaptiveBatchConfig::default()
            }),
            exec_emulation_scale: 1e-3,
            ..ServeConfig::default()
        },
    );
    for item in &items {
        server.submit(Arc::clone(item));
    }
    print_report(
        "affinity routing + adaptive batching (60ms p99 target)",
        &server.shutdown(),
    );

    // 4) SLO-aware shedding: two request classes — urgent high-value
    //    "alerts" and lax "archive" backfill — on an overloaded server.
    //    Admission control refuses provably doomed requests before they
    //    occupy a slot, overflow evicts the worst value-per-remaining-
    //    deadline victim, and EDF dequeue serves the clock-racing class
    //    first. Compare the per-class ledger with scenario 2, which shed
    //    blind.
    let server = AmsServer::start(
        scheduler(agent.clone(), album.world_seed),
        budget,
        ServeConfig {
            shards: 2,
            workers_per_shard: 1,
            queue_capacity: 8,
            max_batch: 4,
            policy: BackpressurePolicy::ShedOldest,
            exec_emulation_scale: 5e-3,
            slo: Some(SloConfig::aware(vec![
                SloClass::new("alert", 40, 4.0),
                SloClass::new("archive", 400, 1.0),
            ])),
            ..ServeConfig::default()
        },
    );
    // Paced at roughly twice what the two workers sustain: a genuine
    // overload, not an instantaneous flood.
    for (i, item) in items.iter().enumerate() {
        if i % 8 == 0 {
            std::thread::sleep(std::time::Duration::from_millis(3));
        }
        server.submit_class(Arc::clone(item), i % 2);
    }
    print_report(
        "slo-aware overload (40ms alerts + 400ms archive, value-weighted shedding)",
        &server.shutdown(),
    );

    // 5) The request/response client API: per-request label retrieval.
    //    Every submission returns a cancellable ticket; each request's own
    //    labels arrive as a Labeled completion event (what the aggregate
    //    report folds away), and a cancelled straggler resolves to exactly
    //    one Cancelled event — the worker never wastes a batch slot on it.
    let server = AmsServer::start(
        scheduler(agent.clone(), album.world_seed),
        budget,
        ServeConfig {
            shards: 2,
            workers_per_shard: 1,
            max_batch: 4,
            queue_capacity: 64,
            policy: BackpressurePolicy::Block,
            exec_emulation_scale: 5e-3,
            ..ServeConfig::default()
        },
    );
    let client = server.client();
    let take = items.len().min(24);
    let mut tickets = Vec::new();
    for item in items.iter().take(take) {
        if let Some(ticket) = client.submit(Arc::clone(item)).ticket() {
            tickets.push(ticket);
        }
    }
    // The last submission is a straggler the caller no longer wants —
    // cancel it while the workers are still chewing through the backlog.
    let straggler = tickets.last().expect("submitted at least one");
    let cancel_won = straggler.cancel();
    println!("--- client API (per-request retrieval) ---");
    let mut labeled = 0u64;
    let mut cancelled = 0u64;
    let mut first_labels: Option<(u64, usize, f64, u64)> = None;
    while let Some(event) = client.recv() {
        match event {
            Completion::Labeled(result) => {
                labeled += 1;
                first_labels.get_or_insert((
                    result.ticket,
                    result.labels.len(),
                    result.recall,
                    result.queue_wait_us + result.execute_us,
                ));
            }
            Completion::Cancelled { ticket, .. } => {
                cancelled += 1;
                println!("  ticket {ticket} cancelled before a worker claimed it");
            }
            Completion::Shed { ticket, reason, .. } => {
                println!("  ticket {ticket} shed ({})", reason.name());
            }
        }
    }
    let report = server.shutdown();
    if let Some((ticket, labels, recall, total_us)) = first_labels {
        println!(
            "  ticket {ticket}: {labels} labels at {:.0}% recall, {:.1}ms wait+execute",
            recall * 100.0,
            total_us as f64 / 1000.0,
        );
    }
    println!(
        "  {take} tickets -> {labeled} labeled + {cancelled} cancelled \
         (cancel {}), ledger cancelled = {}",
        if cancel_won {
            "won the race"
        } else {
            "lost the race"
        },
        report.cancelled,
    );
    assert_eq!(labeled + cancelled, take as u64, "exactly one event each");
    assert!(report.is_conserved());

    // 6) The content-addressed label cache: a repetitive stream — the
    //    album re-uploaded several times over — where repeats are
    //    answered from the cache (exact hits, zero queue wait, zero GPU
    //    bill) or coalesce onto the identical in-flight request. A
    //    cancelled leader with waiting followers is executed as a ghost:
    //    its own ticket resolves Cancelled, its followers still get
    //    their labels.
    let server = AmsServer::start(
        scheduler(agent.clone(), album.world_seed),
        budget,
        ServeConfig {
            shards: 2,
            workers_per_shard: 1,
            max_batch: 4,
            queue_capacity: 64,
            policy: BackpressurePolicy::Block,
            exec_emulation_scale: 5e-3,
            cache: Some(CacheConfig::default()),
            ..ServeConfig::default()
        },
    );
    let client = server.client();
    let take = items.len().min(16);
    println!("--- label cache (content-addressed dedup) ---");
    let mut issued = 0u64;
    let mut leader: Option<Ticket> = None;
    let mut followers = 0u64;
    // Three passes over the same photos: pass 0 leads, passes 1-2 are
    // duplicates. The *last* photo's leader — still deep in the queue
    // when pass 1 resubmits it — is cancelled while its repeats wait on
    // it: the worker ghost-executes it for them.
    for pass in 0..3 {
        for item in items.iter().take(take) {
            let outcome = client.submit(Arc::clone(item));
            if matches!(outcome, SubmitOutcome::Coalesced(_)) {
                followers += 1;
            }
            if let Some(t) = outcome.ticket() {
                if pass == 0 {
                    leader = Some(t);
                }
            }
            issued += 1;
        }
        if pass == 1 {
            if let Some(t) = leader.take() {
                let won = t.cancel();
                println!(
                    "  cancelled the last photo's leader mid-queue ({}): its duplicates still complete",
                    if won { "won the race" } else { "worker already claimed it" },
                );
            }
        }
    }
    let mut labeled = 0u64;
    let mut cancelled = 0u64;
    let mut events = 0u64;
    while let Some(event) = client.recv() {
        events += 1;
        match event {
            Completion::Labeled(_) => labeled += 1,
            Completion::Cancelled { ticket, .. } => {
                cancelled += 1;
                println!("  ticket {ticket} resolved Cancelled — its followers were fed by the ghost execution");
            }
            Completion::Shed { .. } => {}
        }
    }
    let report = server.shutdown();
    let cache = report.cache.as_ref().expect("cache configured");
    println!(
        "  {issued} submissions over {take} distinct photos -> {} executed, {} exact hits + {} coalesced ({:.0}% answered by the cache)",
        report.completed,
        report.cache_hit,
        report.coalesced,
        report.cache_hit_rate() * 100.0,
    );
    println!(
        "  cache: {} entries / {} bytes (budget {}), {} insertions, {} evictions",
        cache.entries, cache.bytes, cache.capacity_bytes, cache.insertions, cache.evictions,
    );
    println!(
        "  virtual GPU bill {:.1}s — the {} cached answers billed nothing; every ticket still resolved exactly once ({events} events: {labeled} labeled, {cancelled} cancelled)",
        report.virtual_work_ms as f64 / 1000.0,
        report.cache_hit + report.coalesced,
    );
    assert_eq!(events, issued, "exactly one event per ticket");
    assert!(
        followers > 0,
        "repeats coalesced while leaders were in flight"
    );
    assert!(report.is_conserved());

    // 7) Live observability: the same paced SLO overload as scenario 4,
    //    but watched from the *outside while it runs* — periodic metrics
    //    snapshots mid-stream (the rings are lock-free and the workers
    //    never block for a reader), a Prometheus scrape, and a
    //    flight-recorder post-mortem answering "why did this specific
    //    request miss?" after the fact. The event stream reconciles
    //    bucket-for-bucket with the conservation ledger at shutdown.
    let server = AmsServer::start(
        scheduler(agent.clone(), album.world_seed),
        budget,
        ServeConfig {
            shards: 2,
            workers_per_shard: 1,
            queue_capacity: 8,
            max_batch: 4,
            policy: BackpressurePolicy::ShedOldest,
            exec_emulation_scale: 5e-3,
            slo: Some(SloConfig::aware(vec![
                SloClass::new("alert", 40, 4.0),
                SloClass::new("archive", 400, 1.0),
            ])),
            obs: Some(ObsConfig::default()),
            ..ServeConfig::default()
        },
    );
    println!("--- live observability (snapshots mid-overload) ---");
    let tick = (items.len() / 4).max(1);
    for (i, item) in items.iter().enumerate() {
        if i % 8 == 0 {
            std::thread::sleep(std::time::Duration::from_millis(3));
        }
        server.submit_class(Arc::clone(item), i % 2);
        if i > 0 && i % tick == 0 {
            let snap = server.metrics_snapshot().expect("obs is on");
            let depth: u64 = snap.shards.iter().map(|s| s.depth).sum();
            let waits: Vec<u64> = snap
                .shards
                .iter()
                .map(|s| s.estimated_wait_us / 1000)
                .collect();
            println!(
                "  t+{:>4}ms: {:>3} in flight, queue depth {:>2}, est wait/shard {:?}ms, shed so far {}",
                snap.uptime_us / 1000,
                snap.in_flight,
                depth,
                waits,
                snap.total(EventKind::ShedAdmission)
                    + snap.total(EventKind::ShedOverflow)
                    + snap.total(EventKind::ShedDeadline),
            );
        }
    }
    // One live Prometheus scrape, as a monitoring agent would see it.
    let scrape = server.render_metrics();
    let picked: Vec<&str> = scrape
        .lines()
        .filter(|l| {
            l.starts_with("ams_in_flight")
                || l.starts_with("ams_shard_queue_depth")
                || l.starts_with("ams_class_deadline_met_rate")
        })
        .collect();
    println!(
        "  prometheus scrape ({} lines), e.g.:",
        scrape.lines().count()
    );
    for line in picked {
        println!("    {line}");
    }
    let report = server.shutdown();
    print_report(
        "live observability (slo overload, event stream on)",
        &report,
    );
    let obs = report.obs.as_ref().expect("obs configured");
    println!(
        "  events: {} admitted -> {} labeled / {} shed / {} cache-answered ({} dropped on rings, still counted)",
        obs.total(EventKind::Admitted),
        obs.total(EventKind::Labeled),
        obs.total(EventKind::ShedAdmission)
            + obs.total(EventKind::ShedOverflow)
            + obs.total(EventKind::ShedDeadline)
            + obs.total(EventKind::ShedDrain),
        obs.total(EventKind::CacheHit) + obs.total(EventKind::Coalesced),
        obs.snapshot.dropped_total,
    );
    assert!(
        report.events_reconcile(),
        "event totals must reconcile with the conservation ledger"
    );
    // The flight recorder: pick one deadline casualty and ask why.
    if let Some(trace) = obs
        .traces
        .iter()
        .find(|t| t.verdict == "deadline_miss" || t.verdict.starts_with("shed"))
    {
        println!("  flight recorder, why(req {}):", trace.req);
        for line in trace.dump().lines() {
            println!("    {line}");
        }
    }

    // 8) The wire: the same ticket protocol over TCP. A loopback
    //    `NetServer` serves two *separate OS processes* at once, each a
    //    `NetClient` on one persistent multiplexed connection whose
    //    completion window is the only flow control. One child attaches a
    //    per-ticket 60ms deadline to every request — the number rides the
    //    request frame and the server's deadline shedder enforces it —
    //    while the other submits plain. Conservation and event
    //    reconciliation hold through the socket.
    let server = AmsServer::start(
        scheduler(agent.clone(), album.world_seed),
        budget,
        ServeConfig {
            shards: 2,
            workers_per_shard: 1,
            max_batch: 4,
            queue_capacity: 64,
            policy: BackpressurePolicy::Block,
            exec_emulation_scale: 5e-3,
            obs: Some(ObsConfig::default()),
            ..ServeConfig::default()
        },
    );
    let net = NetServer::bind(server, "127.0.0.1:0").expect("bind loopback listener");
    let addr = net.local_addr().to_string();
    println!("--- over the wire (two client processes on {addr}) ---");
    let exe = std::env::current_exe().expect("current_exe");
    let spawn = |start: usize, deadline_us: u64| {
        std::process::Command::new(&exe)
            .args([
                "net-client",
                &addr,
                &album_size.to_string(),
                &start.to_string(),
                "2",
                &deadline_us.to_string(),
            ])
            .spawn()
            .expect("spawn net-client child")
    };
    // Even indices plain, odd indices with a per-ticket 60ms deadline.
    let children = [spawn(0, 0), spawn(1, 60_000)];
    for mut child in children {
        let status = child.wait().expect("child exits");
        assert!(status.success(), "net-client child failed: {status:?}");
    }
    let report = net.shutdown();
    print_report(
        "over the wire (per-ticket deadlines from a forked client)",
        &report,
    );
    assert_eq!(report.offered, items.len() as u64, "both halves arrived");
    assert!(
        report.is_conserved(),
        "conservation holds through the socket"
    );
    assert!(
        report.events_reconcile(),
        "event stream reconciles through the socket"
    );

    // 9) Closing the loop: the workload drifts mid-stream. The album
    //    tenant's object-centric photos give way to a new tenant's
    //    scene-centric uploads (Places365 profile) the boot agent never
    //    trained on — and the background trainer (`ams-serve::adapt`)
    //    learns from every served outcome and hot-swaps updated weights
    //    into the predict path, generation by generation, while the
    //    stream is still running. The drifted stream is served twice with
    //    identical configs except `adapt`: once frozen (`adapt: None`)
    //    and once adaptive; each ticket's own completion carries the
    //    realized label value, so the per-phase ledgers come straight
    //    from the client API.
    drop(agent); // the drift story needs a *weak* boot agent, not this one
    let boot = {
        let cfg = TrainConfig {
            episodes: 2, // deliberately undertrained: headroom to adapt into
            ..TrainConfig::fast_test(Algo::Dqn)
        };
        train(truth.items(), zoo.len(), &cfg).0
    };
    let scenic = Dataset::generate(DatasetProfile::Places365, if smoke { 24 } else { 80 }, 17);
    let scenic_truth = TruthTable::build(&zoo, &zoo.catalog(), &scenic, 0.5);
    let scenic_passes = 3usize;
    let scenic_stream: Vec<Arc<ItemTruth>> = scenic_truth
        .items()
        .iter()
        .cycle()
        .take(scenic_truth.items().len() * scenic_passes)
        .map(|i| Arc::new(i.clone()))
        .collect();
    let drift_total = items.len() + scenic_stream.len();
    // Both runs predict from the same generation-0 snapshot of the boot
    // agent — the exact weights the adaptive run serves until its first
    // swap.
    let drift_scheduler = || {
        AdaptiveModelScheduler::new(
            ModelZoo::standard(),
            Box::new(SnapshotPredictor::new(Arc::new(AgentSnapshot::initial(
                boot.clone(),
            )))),
            0.5,
            album.world_seed,
        )
    };
    println!("--- online adaptation under mid-stream drift (frozen vs adaptive) ---");
    let mut post_shift = [0.0f64; 2]; // [frozen, adaptive]
    for (mi, adaptive_on) in [false, true].into_iter().enumerate() {
        let server = AmsServer::start(
            drift_scheduler(),
            budget,
            ServeConfig {
                shards: 2,
                workers_per_shard: 1,
                max_batch: 4,
                queue_capacity: 64,
                policy: BackpressurePolicy::Block,
                exec_emulation_scale: 2e-3,
                obs: Some(ObsConfig::default()),
                adapt: adaptive_on.then(|| AdaptConfig {
                    online: OnlineConfig {
                        warmup: 32,
                        batch: 16,
                        seed: 9,
                        ..OnlineConfig::default()
                    },
                    steps_per_outcome: 4,
                    swap_every: 8,
                    ..AdaptConfig::new(boot.clone())
                }),
                ..ServeConfig::default()
            },
        );
        let client = server.client_with_capacity(drift_total + 1);
        let mut shifted = std::collections::HashMap::new();
        for item in &items {
            let t = client.submit(Arc::clone(item)).ticket().expect("lossless");
            shifted.insert(t.id(), false);
        }
        for item in &scenic_stream {
            let t = client.submit(Arc::clone(item)).ticket().expect("lossless");
            shifted.insert(t.id(), true);
        }
        // The `ams_adapt_generation` gauge is live while the stream runs.
        let live_generation = server
            .metrics_snapshot()
            .expect("obs is on")
            .adapt_generation;
        let report = server.shutdown();
        let mut value = [0.0f64; 2]; // [pre-shift, post-shift]
        let mut events = 0usize;
        while let Some(event) = client.recv() {
            events += 1;
            let Completion::Labeled(result) = event else {
                panic!("lossless drift run labels everything");
            };
            value[usize::from(shifted[&result.ticket])] += result.label_value;
        }
        assert_eq!(events, drift_total, "exactly one completion per ticket");
        assert!(report.is_conserved());
        assert!(report.events_reconcile(), "swap events reconcile too");
        post_shift[mi] = value[1];
        match report.adapt.as_ref() {
            None => println!(
                "  frozen:   pre-shift value {:.1}, post-shift value {:.1} (generation 0 throughout)",
                value[0], value[1],
            ),
            Some(a) => {
                println!(
                    "  adaptive: pre-shift value {:.1}, post-shift value {:.1}",
                    value[0], value[1],
                );
                println!(
                    "    trainer: {} outcomes tapped ({} dropped), {} learn steps, {} generations \
                     hot-swapped (gauge read {:?} mid-stream)",
                    a.experiences,
                    a.experiences_dropped,
                    a.learn_steps,
                    a.swaps,
                    live_generation,
                );
                assert!(a.swaps > 0, "the trainer must publish mid-stream");
                assert_eq!(a.experiences, drift_total as u64, "every outcome tapped");
            }
        }
    }
    println!(
        "  adaptation banked {:.2}x the frozen post-shift value on the drifted tail",
        post_shift[1] / post_shift[0].max(f64::MIN_POSITIVE),
    );

    println!("\nthe same scheduler serves all nine: backpressure and deadline shedding");
    println!("trade recall coverage for bounded queues and fresh frames; affinity");
    println!("routing and the adaptive batch controller make batching deliberate;");
    println!("SLO classes make the *shedding* deliberate too; the client API");
    println!("closes the loop — every request hands its caller a ticket that");
    println!("resolves to exactly one completion: its labels, its shed reason, or");
    println!("its cancellation — the content-addressed cache makes repeated");
    println!("content free: exact repeats answer before admission, in-flight");
    println!("duplicates coalesce onto one execution — the observability");
    println!("layer watches it all live, with event totals that reconcile");
    println!("bucket-for-bucket against the conservation ledger — and the");
    println!("whole ticket protocol travels a TCP socket unchanged: separate");
    println!("processes hold persistent windowed connections, per-ticket");
    println!("deadlines ride the request frames, and disconnect is cancel —");
    println!("and when the workload itself drifts, the background trainer");
    println!("closes the loop: served outcomes feed a live learner whose");
    println!("generations hot-swap into the predict path without a restart.");
}
