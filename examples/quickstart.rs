//! Quickstart: assemble the framework, train a small agent, and label a
//! handful of items under different budgets.
//!
//! Run with: `cargo run --release --example quickstart`

use ams::prelude::*;

fn main() {
    // --- 1. The model zoo (Table I): 30 simulated vision models. ---------
    let zoo = ModelZoo::standard();
    println!(
        "zoo: {} models over {} tasks, {} labels, {:.2}s to run everything",
        zoo.len(),
        Task::ALL.len(),
        zoo.catalog().len(),
        zoo.total_time_ms() as f64 / 1000.0
    );

    // --- 2. A data stream and its full-execution ground truth. -----------
    let dataset = Dataset::generate(DatasetProfile::Coco2017, 300, 42);
    let truth = TruthTable::build(&zoo, &zoo.catalog(), &dataset, 0.5);
    let split = dataset.split_1_to_4();
    let (train_items, test_items) = truth.split(split);

    // --- 3. Train a DRL agent to predict model values (§IV). -------------
    println!(
        "training a DuelingDQN agent on {} items...",
        train_items.len()
    );
    let cfg = TrainConfig {
        episodes: 400,
        ..TrainConfig::new(Algo::DuelingDqn)
    };
    let (agent, stats) = train(train_items, zoo.len(), &cfg);
    println!(
        "trained: {} env steps, trailing episode reward {:.2}",
        stats.steps,
        stats.trailing_reward(50)
    );

    // --- 4. Label items under three budgets (§V). -------------------------
    let scheduler = AdaptiveModelScheduler::new(zoo, Box::new(AgentPredictor::new(agent)), 0.5, 42);
    let item = &test_items[0];

    for budget in [
        Budget::Unconstrained,
        Budget::Deadline { ms: 1000 },
        Budget::DeadlineMemory {
            ms: 800,
            mem_mb: 12 * 1024,
        },
    ] {
        let outcome = scheduler.label_item(item, budget);
        println!(
            "\n== {budget:?}: {} models, {:.2}s, recall {:.0}%",
            outcome.executed.len(),
            outcome.elapsed_ms as f64 / 1000.0,
            outcome.recall * 100.0
        );
        for (label, conf) in outcome.labels.iter().take(6) {
            println!("   {} ({conf:.2})", scheduler.catalog().name(*label));
        }
        if outcome.labels.len() > 6 {
            println!("   ... and {} more labels", outcome.labels.len() - 6);
        }
    }
}
