//! Photo-album management (one of the paper's §I motivating apps): label a
//! personal photo stream comprehensively so every photo is searchable by
//! keyword, under a per-photo latency budget.
//!
//! Run with: `cargo run --release --example photo_album`

use ams::prelude::*;
use std::collections::BTreeMap;

fn main() {
    let zoo = ModelZoo::standard();
    let catalog = zoo.catalog();

    // A Flickr-like personal album: portraits, social scenes, landscapes.
    let album = Dataset::generate(DatasetProfile::MirFlickr25, 400, 2024);
    let truth = TruthTable::build(&zoo, &catalog, &album, 0.5);
    let split = album.split_1_to_4();
    let (train_items, test_items) = truth.split(split);

    println!(
        "album: {} photos; indexing the first 20% to learn the content profile",
        album.len()
    );
    let cfg = TrainConfig {
        episodes: 400,
        ..TrainConfig::new(Algo::DuelingDqn)
    };
    let (agent, _) = train(train_items, zoo.len(), &cfg);
    let scheduler =
        AdaptiveModelScheduler::new(zoo, Box::new(AgentPredictor::new(agent)), 0.5, 2024);

    // Index the rest under a 1.5s per-photo budget and build the keyword index.
    let mut keyword_index: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    let mut total_time = 0.0;
    let mut total_recall = 0.0;
    let budget = Budget::Deadline { ms: 1500 };
    for item in test_items.iter().take(120) {
        let outcome = scheduler.label_item(item, budget);
        total_time += outcome.elapsed_ms as f64 / 1000.0;
        total_recall += outcome.recall;
        for (label, _) in &outcome.labels {
            keyword_index
                .entry(scheduler.catalog().name(*label).to_string())
                .or_default()
                .push(item.scene_id);
        }
    }
    let n = 120.0;
    println!(
        "indexed 120 photos at {:.2}s/photo avg ({:.0}% of label value recalled)",
        total_time / n,
        total_recall / n * 100.0
    );

    // A few example keyword searches.
    for query in ["beach", "dog", "happy", "person", "drinking beer"] {
        let hits = keyword_index.get(query).map(Vec::len).unwrap_or(0);
        println!("search \"{query}\": {hits} photos");
    }
    println!("total searchable keywords: {}", keyword_index.len());
}
