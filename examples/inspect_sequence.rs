//! Fig. 7-style inspection: watch the agent's prediction-scheduling-
//! execution loop unfold on a single image, model by model.
//!
//! Run with: `cargo run --release --example inspect_sequence`

use ams::core::policies::predictor_greedy_rollout;
use ams::prelude::*;

fn main() {
    let zoo = ModelZoo::standard();
    let catalog = zoo.catalog();
    let ds = Dataset::generate(DatasetProfile::MirFlickr25, 300, 5);
    let truth = TruthTable::build(&zoo, &catalog, &ds, 0.5);
    let split = ds.split_1_to_4();
    let (train_items, test_items) = truth.split(split);

    let cfg = TrainConfig {
        episodes: 400,
        ..TrainConfig::new(Algo::DuelingDqn)
    };
    let (agent, _) = train(train_items, zoo.len(), &cfg);
    let predictor = AgentPredictor::new(agent);

    // Pick a content-rich item and replay the agent's choices.
    let item = test_items
        .iter()
        .max_by_key(|it| it.valuable_models(0.5).len())
        .expect("non-empty test set");
    let scene = &ds.scenes[item.scene_id as usize];
    println!(
        "scene {}: {} persons, {} dogs, {} objects, template {:?}\n",
        item.scene_id,
        scene.persons.len(),
        scene.dogs.len(),
        scene.objects.len(),
        scene.template
    );

    let rollout = predictor_greedy_rollout(item, &zoo, &predictor, 1.0, 0.5);
    let mut state = LabelSet::new(item.universe());
    let mut recalled = 0.0;
    for (i, &m) in rollout.executed.iter().enumerate() {
        let new: Vec<String> = item
            .output(m)
            .valuable(0.5)
            .filter(|d| !state.contains(d.label))
            .map(|d| format!("{} {:.2}", catalog.name(d.label), d.confidence))
            .collect();
        recalled += item.apply(&mut state, m, 0.5);
        let summary = match new.len() {
            0 => "—".to_string(),
            1..=3 => new.join(", "),
            n => format!("{}, … (+{} more)", new[..3].join(", "), n - 3),
        };
        println!(
            "{:>2}. {:<26} recall {:>5.1}%  {summary}",
            i + 1,
            zoo.spec(m).name,
            recalled / item.total_value * 100.0
        );
    }
}
