//! Delay-sensitive video surveillance (§VI-E's motivating deployment):
//! faces must be detected with the shortest possible delay, so the face
//! detector's priority θ is raised — without giving up overall labeling
//! efficiency. Scheduling runs under a tight deadline + GPU memory budget
//! (Algorithm 2).
//!
//! Run with: `cargo run --release --example surveillance`

use ams::prelude::*;

fn main() {
    let zoo = ModelZoo::standard();
    let catalog = zoo.catalog();
    let face_model = zoo
        .models_for(Task::FaceDetection)
        .next()
        .expect("face detector")
        .id;

    // Street-camera-like content.
    let stream = Dataset::generate(DatasetProfile::Stanford40, 300, 7);
    let truth = TruthTable::build(&zoo, &catalog, &stream, 0.5);
    let split = stream.split_1_to_4();
    let (train_items, test_items) = truth.split(split);

    for theta in [1.0f32, 10.0] {
        let reward = RewardConfig::default().with_theta(face_model, theta, zoo.len());
        let cfg = TrainConfig {
            episodes: 400,
            reward,
            ..TrainConfig::new(Algo::DuelingDqn)
        };
        let (agent, _) = train(train_items, zoo.len(), &cfg);
        let predictor = AgentPredictor::new(agent);

        // Measure where the face detector lands in the execution order and
        // the recall achieved under a 0.8s / 12GB budget.
        let mut face_pos = 0.0;
        let mut recall = 0.0;
        let mut face_found = 0usize;
        let n = 60;
        for item in test_items.iter().take(n) {
            let r = schedule_deadline_memory(&predictor, &zoo, item, 800, 12 * 1024, 0.5);
            recall += r.recall;
            if let Some(p) = r.completed.iter().position(|&m| m == face_model) {
                face_pos += (p + 1) as f64;
                face_found += 1;
            }
        }
        println!(
            "θ(face)={theta:>4}: face detector completed on {face_found}/{n} frames, avg completion rank {:.1}, avg recall {:.0}%",
            if face_found > 0 { face_pos / face_found as f64 } else { f64::NAN },
            recall / n as f64 * 100.0
        );
    }
    println!("\nraising θ pulls the face detector forward in the schedule");
    println!("without sacrificing the overall label recall (§VI-E).");
}
