//! Data-market enrichment (§I: "the richer the label of a data set, the
//! higher the price"): a seller enriches a raw image corpus with labels
//! under a total compute budget, choosing between scheduling policies.
//!
//! Run with: `cargo run --release --example data_market`

use ams::core::policies::{optimal_rollout, predictor_greedy_rollout, random_rollout};
use ams::prelude::*;

fn main() {
    let zoo = ModelZoo::standard();
    let catalog = zoo.catalog();
    let corpus = Dataset::generate(DatasetProfile::PascalVoc2012, 400, 99);
    let truth = TruthTable::build(&zoo, &catalog, &corpus, 0.5);
    let split = corpus.split_1_to_4();
    let (train_items, test_items) = truth.split(split);

    let cfg = TrainConfig {
        episodes: 400,
        ..TrainConfig::new(Algo::DuelingDqn)
    };
    let (agent, _) = train(train_items, zoo.len(), &cfg);
    let predictor = AgentPredictor::new(agent);

    // Price model: the corpus sells for the sum of label values; compute
    // costs $c per GPU-second. Compare policies at a 90% recall target.
    let gpu_cost_per_s = 0.002;
    let price_per_value = 0.05;
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "policy", "value", "gpu-hours", "cost $", "margin $"
    );
    let items: Vec<&ItemTruth> = test_items.iter().take(200).collect();
    type Runner<'a> = Box<dyn Fn(&ItemTruth) -> Rollout + 'a>;
    let policies: Vec<(&str, Runner<'_>)> = vec![
        (
            "random",
            Box::new(|it: &ItemTruth| random_rollout(it, &zoo, 0.9, 0.5, 3)),
        ),
        (
            "drl-agent",
            Box::new(|it: &ItemTruth| predictor_greedy_rollout(it, &zoo, &predictor, 0.9, 0.5)),
        ),
        (
            "oracle",
            Box::new(|it: &ItemTruth| optimal_rollout(it, &zoo, 0.9, 0.5)),
        ),
    ];
    for (name, run) in &policies {
        let mut value = 0.0;
        let mut secs = 0.0;
        for item in &items {
            let r = run(item);
            value += r.recall * item.total_value;
            secs += r.time_ms as f64 / 1000.0;
        }
        let cost = secs * gpu_cost_per_s;
        let revenue = value * price_per_value;
        println!(
            "{name:<12} {value:>12.1} {:>12.3} {cost:>12.2} {:>12.2}",
            secs / 3600.0,
            revenue - cost
        );
    }
    println!("\nthe DRL scheduler keeps almost all of the sellable label value");
    println!("while cutting the GPU bill roughly in half versus random.");
}
